// LSB-first bit stream used by the Huffman-coded codec.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "compress/codec.h"

namespace strato::compress {

/// Appends bits least-significant-first into a byte vector.
class BitWriter {
 public:
  explicit BitWriter(common::Bytes& out) : out_(out) {}

  /// Write the low `nbits` bits of `value` (nbits <= 32).
  void write(std::uint32_t value, int nbits) {
    acc_ |= static_cast<std::uint64_t>(value & mask(nbits)) << filled_;
    filled_ += nbits;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Flush the final partial byte (zero-padded).
  void finish() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  static constexpr std::uint32_t mask(int nbits) {
    return nbits >= 32 ? 0xFFFFFFFFu : ((1u << nbits) - 1u);
  }

  common::Bytes& out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Reads bits least-significant-first from a span. Reading past the end
/// yields zero bits (trailing padding); structural errors are caught by
/// the caller's symbol/length validation.
class BitReader {
 public:
  explicit BitReader(common::ByteSpan in) : in_(in) {}

  /// Read `nbits` bits (nbits <= 32).
  std::uint32_t read(int nbits) {
    fill(nbits);
    const auto v = static_cast<std::uint32_t>(
        acc_ & ((nbits >= 32 ? ~0ULL : ((1ULL << nbits) - 1))));
    acc_ >>= nbits;
    filled_ -= nbits;
    return v;
  }

  /// Peek up to `nbits` bits without consuming.
  std::uint32_t peek(int nbits) {
    fill(nbits);
    return static_cast<std::uint32_t>(
        acc_ & ((nbits >= 32 ? ~0ULL : ((1ULL << nbits) - 1))));
  }

  /// Consume `nbits` previously peeked bits.
  void skip(int nbits) {
    acc_ >>= nbits;
    filled_ -= nbits;
  }

  /// Bytes consumed from the input so far (including buffered bits).
  [[nodiscard]] std::size_t consumed() const { return pos_; }

 private:
  void fill(int nbits) {
    while (filled_ < nbits) {
      const std::uint64_t byte = pos_ < in_.size() ? in_[pos_] : 0;
      ++pos_;
      acc_ |= byte << filled_;
      filled_ += 8;
    }
  }

  common::ByteSpan in_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace strato::compress
