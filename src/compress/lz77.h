// Byte-oriented LZ77 engine (QuickLZ substitute).
//
// One match-finding/encoding engine parameterised by effort serves both
// the LIGHT (FastLz) and MEDIUM (MediumLz) levels, mirroring the paper's
// use of QuickLZ at two settings. The on-wire format is LZ4-style:
//
//   sequence := token | [lit-len ext]* | literals | offset16 | [match-len ext]*
//   token    := (literal_count:4 | match_len-4:4), 15 escapes to extension
//               bytes of 255... terminated by a byte < 255
//   offset16 := little-endian distance in [1, 65535]
//
// A block ends with a final sequence that stops after its literals.
// Matches are at least 4 bytes; the last 5 bytes of a block are always
// emitted as literals (simplifies safe copy loops).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "compress/codec.h"

namespace strato::compress {

/// Match-finder effort knobs.
struct Lz77Params {
  /// log2 of hash-table size.
  int hash_bits = 14;
  /// Hash-chain search depth; 0 = single-probe greedy (fastest).
  int chain_depth = 0;
  /// One-step-lazy matching (defer a match if position+1 has a better one).
  bool lazy = false;
  /// Literal-run skip acceleration shift (LZ4-style); larger = more
  /// aggressive skipping through incompressible regions.
  int skip_shift = 6;
};

/// Compress with the given effort. Returns bytes written to dst.
/// dst must hold at least lz77_max_compressed_size(src.size()).
std::size_t lz77_compress(common::ByteSpan src, common::MutableByteSpan dst,
                          const Lz77Params& params);

/// Decompress an LZ77 block; dst.size() must be the exact raw size.
/// @throws CodecError on malformed input.
std::size_t lz77_decompress(common::ByteSpan src, common::MutableByteSpan dst);

/// History-aware variant: compress buffer[history_len..] with matches
/// allowed to reach back into buffer[0..history_len) (the retained window
/// of previous blocks). With history_len = 0 this is lz77_compress.
/// Used by the streaming (non-self-contained) mode that ablates the
/// paper's block-independence design choice.
std::size_t lz77_compress_with_history(common::ByteSpan buffer,
                                       std::size_t history_len,
                                       common::MutableByteSpan dst,
                                       const Lz77Params& params);

/// Decompress into buffer[history_len .. history_len+raw_size); match
/// copies may read from the history prefix. Returns bytes written.
std::size_t lz77_decompress_with_history(common::ByteSpan src,
                                         common::MutableByteSpan buffer,
                                         std::size_t history_len,
                                         std::size_t raw_size);

/// Worst-case output bound for `n` input bytes. Includes
/// simd::kWildCopyPad of slack beyond the tight bound so the encoder's
/// literal copies can run in full-register strides (the bytes past the
/// returned compressed size are scratch garbage, never part of the wire).
constexpr std::size_t lz77_max_compressed_size(std::size_t n) {
  return n + n / 255 + 48;
}

/// Level 1, LIGHT: greedy single-probe matcher, QuickLZ-fastest analogue.
class FastLz final : public Codec {
 public:
  [[nodiscard]] std::uint8_t id() const override { return kCodecFastLz; }
  [[nodiscard]] std::string name() const override { return "fastlz"; }
  [[nodiscard]] std::size_t max_compressed_size(std::size_t n) const override {
    return lz77_max_compressed_size(n);
  }
  std::size_t compress(common::ByteSpan src,
                       common::MutableByteSpan dst) const override;
  std::size_t decompress(common::ByteSpan src,
                         common::MutableByteSpan dst) const override;
  using Codec::compress;
  using Codec::decompress;
};

/// Level 2, MEDIUM: hash chains + lazy matching, QuickLZ-ratio analogue —
/// better ratio, a few times slower.
class MediumLz final : public Codec {
 public:
  [[nodiscard]] std::uint8_t id() const override { return kCodecMediumLz; }
  [[nodiscard]] std::string name() const override { return "mediumlz"; }
  [[nodiscard]] std::size_t max_compressed_size(std::size_t n) const override {
    return lz77_max_compressed_size(n);
  }
  std::size_t compress(common::ByteSpan src,
                       common::MutableByteSpan dst) const override;
  std::size_t decompress(common::ByteSpan src,
                         common::MutableByteSpan dst) const override;
  using Codec::compress;
  using Codec::decompress;
};

}  // namespace strato::compress
