#include "compress/decode_pipeline.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace strato::compress {

namespace {

std::size_t coerce_depth(const DecodePipelineConfig& cfg) {
  if (cfg.depth != 0) return cfg.depth;
  return 2 * std::max<std::size_t>(std::size_t{1}, cfg.worker_count);
}

}  // namespace

ParallelBlockDecodePipeline::ParallelBlockDecodePipeline(
    const CodecRegistry& registry, DecodePipelineConfig config)
    : registry_(registry),
      depth_(coerce_depth(config)),
      segment_size_(config.segment_size == 0 ? kDefaultDecodeSegmentSize
                                             : config.segment_size),
      slots_(depth_),
      // One output buffer per in-flight block plus a few receive segments
      // cycling through seal/retire.
      pool_(2 * depth_ + 4),
      workers_(config.worker_count > 1
                   ? std::make_unique<common::ThreadPool>(config.worker_count)
                   : nullptr) {}

ParallelBlockDecodePipeline::~ParallelBlockDecodePipeline() {
  // ThreadPool (constructed last, destroyed first) drains every accepted
  // decode before the slots and segments those jobs touch are destroyed.
  // Undelivered blocks are simply dropped.
  if (workers_ != nullptr) workers_->shutdown();
  drop_lease();
}

void ParallelBlockDecodePipeline::feed(common::ByteSpan data) {
  append_wire(data);
  parse_available();
  dispatch_available();
}

ParallelBlockDecodePipeline::Segment* ParallelBlockDecodePipeline::ensure_free(
    std::size_t n) {
  recv_seg_ = nullptr;  // any outstanding recv_span is invalidated
  if (segments_.empty()) {
    Segment fresh;
    fresh.data = pool_.acquire(std::max(segment_size_, n));
    // Expose the whole reserved capacity as writable space; `fill` tracks
    // how much of it actually holds wire bytes. data() never moves.
    fresh.data.resize(fresh.data.capacity());
    segments_.push_back(std::move(fresh));
  }
  Segment* seg = &segments_.back();

  // Fully-drained active segment: restart it in place (the FrameAssembler
  // "reset the offset, move nothing" case).
  if (seg->parse_off == seg->fill && seg->parse_off != 0) {
    bool drained;
    {
      common::MutexLock lk(mu_);
      drained = seg->outstanding == 0;
    }
    if (drained) {
      seg->fill = 0;
      seg->parse_off = 0;
    }
  }

  if (seg->fill + n > seg->data.size()) {
    // Wraparound: seal the segment and move ONLY the partial-frame tail
    // into a fresh one (every complete frame was already parsed in place).
    // This is the single point where a wire byte can move a second time.
    const std::size_t tail = seg->fill - seg->parse_off;
    std::size_t need = std::max(segment_size_, tail + n);
    // When the pending frame's header is known, size the fresh segment to
    // hold the whole frame so an oversized frame wraps at most once more.
    need = std::max(need, pending_frame_size_);
    Segment fresh;
    fresh.data = pool_.acquire(need);
    fresh.data.resize(fresh.data.capacity());
    if (tail > 0) {
      std::memcpy(fresh.data.data(), seg->data.data() + seg->parse_off,
                  tail);
      tail_bytes_copied_ += tail;
      seg->fill = seg->parse_off;  // the moved tail is dead in the old seg
    }
    fresh.fill = tail;
    seg->sealed = true;
    ++segments_sealed_;
    segments_.push_back(std::move(fresh));
    seg = &segments_.back();
  }
  return seg;
}

void ParallelBlockDecodePipeline::append_wire(common::ByteSpan data) {
  wire_fed_ += data.size();
  // A poisoned stream can never decode past the bad header; buffering more
  // bytes would only grow memory for frames that are unreachable.
  if (poisoned_ || data.empty()) return;

  Segment* seg = ensure_free(data.size());
  // The receive append: the one sanctioned wire-byte copy on this path
  // (recv_span()/commit() skips even this one).
  std::memcpy(seg->writable_tail().data(), data.data(), data.size());
  seg->fill += data.size();
}

common::MutableByteSpan ParallelBlockDecodePipeline::recv_span(
    std::size_t min_bytes) {
  if (min_bytes == 0) min_bytes = 1;
  if (poisoned_) {
    // Nothing past the poison frame can ever parse; let the reader drain
    // its socket into scratch instead of growing dead segments.
    if (poison_scratch_.size() < min_bytes) poison_scratch_.resize(min_bytes);
    recv_seg_ = nullptr;
    return {poison_scratch_.data(), poison_scratch_.size()};
  }
  Segment* seg = ensure_free(min_bytes);
  recv_seg_ = seg;
  return seg->writable_tail();
}

void ParallelBlockDecodePipeline::commit(std::size_t n) {
  wire_fed_ += n;
  if (n == 0) return;
  if (recv_seg_ == nullptr) {
    if (poisoned_) return;  // drained into scratch, dropped by design
    throw std::logic_error(
        "ParallelBlockDecodePipeline::commit without recv_span");
  }
  Segment* seg = recv_seg_;
  recv_seg_ = nullptr;
  if (seg->fill + n > seg->data.size()) {
    throw std::logic_error(
        "ParallelBlockDecodePipeline::commit exceeds recv_span");
  }
  seg->fill += n;
  parse_available();
  dispatch_available();
}

void ParallelBlockDecodePipeline::parse_available() {
  if (poisoned_ || segments_.empty()) return;
  // Invariant: only the active (last) segment holds unparsed bytes —
  // sealing moves the unparsed tail forward.
  Segment& seg = segments_.back();
  for (;;) {
    const std::size_t avail = seg.fill - seg.parse_off;
    // Each frame's header is parsed exactly once: cached on the first pass
    // that sees it complete, reused while starved for payload bytes.
    if (pending_frame_size_ == 0) {
      if (avail < kFrameHeaderSize) return;
      try {
        pending_hdr_ = parse_header(seg.unparsed());
      } catch (...) {
        // Poison at this exact frame position; rethrown (sticky) once
        // every preceding frame has been delivered — serial order.
        poisoned_ = true;
        parse_error_ = std::current_exception();
        return;
      }
      pending_frame_size_ = kFrameHeaderSize + pending_hdr_.comp_size;
    }
    if (avail < pending_frame_size_) return;

    ParsedFrame pf;
    pf.header = pending_hdr_;
    pf.payload = seg.unparsed().subspan(kFrameHeaderSize,
                                        pending_hdr_.comp_size);
    pf.segment = &seg;
    pf.frame_size = pending_frame_size_;
    {
      common::MutexLock lk(mu_);
      ++seg.outstanding;
    }
    seg.parse_off += pending_frame_size_;
    pending_frame_size_ = 0;
    ++parsed_seq_;
    // The parsed frame's payload span legitimately outlives this
    // statement: Segment::outstanding was incremented above, so the
    // segment cannot retire to the pool until the frame's decode
    // finishes — the queued borrow is lease-backed by construction.
    parsed_.push_back(pf);  // strato-lint: allow(lifetime)
  }
}

void ParallelBlockDecodePipeline::dispatch_available() {
  while (!parsed_.empty() && next_seq_ - deliver_seq_ < depth_) {
    const ParsedFrame pf = parsed_.front();
    parsed_.pop_front();
    const std::uint64_t seq = next_seq_++;
    Slot& slot = slots_[seq % depth_];
    slot.state = Slot::State::kPending;
    slot.header = pf.header;
    slot.payload = pf.payload;
    slot.segment = pf.segment;
    slot.frame_size = pf.frame_size;
    slot.error = nullptr;
    slot.out = pool_.acquire(pf.header.raw_size);
    if (workers_ != nullptr) {
      workers_->submit([this, seq] { decode_slot(seq); });
    } else {
      decode_slot(seq);
    }
  }
}

void ParallelBlockDecodePipeline::decode_slot(std::uint64_t seq) {
  Slot& slot = slots_[seq % depth_];
  std::exception_ptr error;
  try {
    FrameView view;
    view.header = slot.header;
    view.payload = slot.payload;
    view.frame_size = slot.frame_size;
    decode_frame_into(view, registry_, slot.out);
  } catch (...) {
    error = std::current_exception();
  }
  {
    common::MutexLock lk(mu_);
    slot.error = error;
    // The payload span is dead from here on; its segment can recycle once
    // its siblings finish too.
    --slot.segment->outstanding;
    slot.state = Slot::State::kReady;
  }
  ready_cv_.notify_all();
}

std::optional<DecodedBlock> ParallelBlockDecodePipeline::next_block() {
  drop_lease();
  dispatch_available();
  if (deliver_seq_ == next_seq_) {
    // Nothing in flight. If parsing hit a malformed header and every frame
    // before it has been delivered, this is exactly where the serial path
    // throws.
    if (poisoned_ && parsed_.empty() && parse_error_ != nullptr) {
      std::rethrow_exception(parse_error_);
    }
    retire_segments();
    return std::nullopt;
  }
  Slot& slot = slots_[deliver_seq_ % depth_];
  {
    common::MutexLock lk(mu_);
    while (slot.state != Slot::State::kReady) ready_cv_.wait(mu_);
  }
  // Past this point the slot belongs to the feeding thread again: the
  // worker finished (kReady) and no dispatch can reuse it before
  // deliver_seq_ advances.
  if (slot.error != nullptr) {
    // Sticky, like the serial path: the failed block stays at the head of
    // the window and every further call rethrows the same error.
    std::rethrow_exception(slot.error);
  }
  last_ = slot.header;
  lease_ = std::move(slot.out);
  lease_active_ = true;
  wire_delivered_ += slot.frame_size;
  slot = Slot{};
  ++deliver_seq_;
  retire_segments();
  dispatch_available();
  return DecodedBlock{common::ByteSpan(lease_), last_};
}

void ParallelBlockDecodePipeline::retire_segments() {
  while (!segments_.empty()) {
    Segment& front = segments_.front();
    if (!front.sealed) return;
    {
      common::MutexLock lk(mu_);
      if (front.outstanding != 0) return;
    }
    pool_.release(std::move(front.data));
    segments_.pop_front();
  }
}

void ParallelBlockDecodePipeline::drop_lease() {
  if (!lease_active_) return;
  lease_active_ = false;
  pool_.release(std::move(lease_));
}

}  // namespace strato::compress
