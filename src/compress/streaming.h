// Streaming (cross-block) LZ compression.
//
// The paper's channel blocks are deliberately self-contained: "each block
// contains all the information to be decompressed by the receiver"
// (Section III-B) — robust and order-independent, but every block starts
// with a cold dictionary. This pair of classes implements the opposite
// design point: a rolling window carried across blocks, so later blocks
// can match into earlier ones. bench_ablation_block_independence
// quantifies what the paper's independence choice costs in ratio at
// different block sizes.
//
// Both sides must process blocks in order and share a reset schedule;
// a lost or reordered block desynchronizes the stream (exactly the
// operational cost the paper avoids).
#pragma once

#include <cstddef>

#include "common/bytes.h"
#include "compress/lz77.h"

namespace strato::compress {

/// Stateful compressor retaining up to `window` bytes of raw history.
class StreamingLzCompressor {
 public:
  explicit StreamingLzCompressor(Lz77Params params = {},
                                 std::size_t window = 64 * 1024)
      : params_(params), window_(window) {}

  /// Compress the next block; matches may reference prior blocks.
  common::Bytes compress_block(common::ByteSpan raw);

  /// Drop all history (e.g. after a downstream resync).
  void reset() { history_.clear(); }

  [[nodiscard]] std::size_t history_size() const { return history_.size(); }

 private:
  Lz77Params params_;
  std::size_t window_;
  common::Bytes history_;  // rolling raw-byte window
};

/// Stateful decompressor mirroring StreamingLzCompressor block for block.
class StreamingLzDecompressor {
 public:
  explicit StreamingLzDecompressor(std::size_t window = 64 * 1024)
      : window_(window) {}

  /// Decompress the next block of known raw size.
  /// @throws CodecError on malformed input.
  common::Bytes decompress_block(common::ByteSpan comp, std::size_t raw_size);

  void reset() { history_.clear(); }

 private:
  std::size_t window_;
  common::Bytes history_;
};

}  // namespace strato::compress
