#include "compress/deflate_lz.h"

#include <bit>
#include <cstring>
#include <vector>

#include "common/simd.h"
#include "compress/huffman.h"
#include "compress/lz77.h"

namespace strato::compress {
namespace {

namespace simd = common::simd;

constexpr std::size_t kMinMatch = 4;
// Literal/length alphabet: 256 literals + 18 length slots + EOB.
constexpr std::uint32_t kNumLenSlots = 18;
constexpr std::uint32_t kEob = 256 + kNumLenSlots;
constexpr std::size_t kLitLenAlphabet = kEob + 1;
// Distance alphabet: bit_width(offset) in [1, 16] -> 16 slots.
constexpr std::size_t kDistAlphabet = 16;

constexpr std::uint8_t kMarkerCoded = 0;
constexpr std::uint8_t kMarkerStored = 1;

/// One parsed LZ sequence: a literal run followed by an optional match.
/// Storing runs as spans into the LZ stream (instead of one heap Token per
/// literal byte) keeps the parse allocation-free and cache-friendly — the
/// old per-literal vector was the single largest allocation of a
/// DeflateLz::compress call.
struct Seq {
  const std::uint8_t* lit = nullptr;
  std::uint32_t lit_len = 0;
  std::uint32_t length = 0;  // 0 = final literal-only sequence
  std::uint32_t offset = 0;
};

/// Per-thread scratch reused across blocks (parallel pipeline workers each
/// hold their own copy).
struct DeflateScratch {
  common::Bytes lz;
  std::vector<Seq> seqs;
  common::Bytes coded;
};

DeflateScratch& deflate_scratch() {
  static thread_local DeflateScratch scratch;
  return scratch;
}

/// Parse the byte-aligned LZ4-style stream produced by lz77_compress into
/// sequences (the format is produced locally, so structural errors indicate
/// an internal bug and throw).
void parse_lz_stream(common::ByteSpan lz, std::vector<Seq>& seqs) {
  seqs.clear();
  const std::uint8_t* p = lz.data();
  const std::uint8_t* end = p + lz.size();
  auto read_ext = [&](std::size_t base) {
    std::size_t v = base;
    std::uint8_t b;
    do {
      if (p >= end) throw CodecError("deflatelz: bad internal lz stream");
      b = *p++;
      v += b;
    } while (b == 255);
    return v;
  };
  while (p < end) {
    const std::uint8_t token = *p++;
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) lit_len = read_ext(15);
    if (lit_len > static_cast<std::size_t>(end - p)) {
      throw CodecError("deflatelz: bad internal lz stream");
    }
    Seq seq;
    seq.lit = p;
    seq.lit_len = static_cast<std::uint32_t>(lit_len);
    p += lit_len;
    if (p == end) {
      seqs.push_back(seq);
      break;
    }
    if (p + 2 > end) throw CodecError("deflatelz: bad internal lz stream");
    seq.offset = common::load_le16(p);
    p += 2;
    std::size_t match_len = (token & 15) + kMinMatch;
    if ((token & 15) == 15) match_len = read_ext(15 + kMinMatch);
    seq.length = static_cast<std::uint32_t>(match_len);
    seqs.push_back(seq);
  }
}

/// Length slot for (match length - kMinMatch).
inline std::uint32_t len_slot(std::uint32_t v) {
  return v == 0 ? 0 : static_cast<std::uint32_t>(std::bit_width(v));
}

}  // namespace

std::size_t DeflateLz::compress(common::ByteSpan src,
                                common::MutableByteSpan dst) const {
  if (dst.size() < max_compressed_size(src.size())) {
    throw CodecError("deflatelz: destination too small");
  }
  if (src.empty()) {
    dst[0] = kMarkerStored;
    return 1;
  }

  // LZ parse (MediumLz effort), into per-thread scratch buffers.
  Lz77Params params;
  params.hash_bits = 16;
  params.chain_depth = 8;
  params.lazy = true;
  DeflateScratch& scratch = deflate_scratch();
  scratch.lz.resize(lz77_max_compressed_size(src.size()));
  scratch.lz.resize(lz77_compress(src, scratch.lz, params));
  parse_lz_stream(scratch.lz, scratch.seqs);

  // Frequencies.
  std::vector<std::uint64_t> lit_freq(kLitLenAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kDistAlphabet, 0);
  for (const Seq& s : scratch.seqs) {
    for (std::uint32_t i = 0; i < s.lit_len; ++i) ++lit_freq[s.lit[i]];
    if (s.length != 0) {
      ++lit_freq[256 + len_slot(s.length - kMinMatch)];
      ++dist_freq[std::bit_width(s.offset) - 1];
    }
  }
  ++lit_freq[kEob];

  const auto lit_lengths = huffman_code_lengths(lit_freq);
  const auto dist_lengths = huffman_code_lengths(dist_freq);
  const HuffmanEncoder lit_enc(lit_lengths);
  const HuffmanEncoder dist_enc(dist_lengths);

  common::Bytes& out = scratch.coded;
  out.clear();
  out.reserve(src.size() / 2);
  out.push_back(kMarkerCoded);
  BitWriter bw(out);
  for (const auto l : lit_lengths) bw.write(l, 4);
  for (const auto l : dist_lengths) bw.write(l, 4);
  for (const Seq& s : scratch.seqs) {
    for (std::uint32_t i = 0; i < s.lit_len; ++i) {
      lit_enc.encode(bw, s.lit[i]);
    }
    if (s.length == 0) continue;
    const std::uint32_t v = s.length - kMinMatch;
    const std::uint32_t slot = len_slot(v);
    lit_enc.encode(bw, 256 + slot);
    if (slot > 1) bw.write(v & ((1u << (slot - 1)) - 1u), slot - 1);
    const std::uint32_t dslot =
        static_cast<std::uint32_t>(std::bit_width(s.offset));
    dist_enc.encode(bw, dslot - 1);
    if (dslot > 1) {
      bw.write(s.offset & ((1u << (dslot - 1)) - 1u), dslot - 1);
    }
  }
  lit_enc.encode(bw, kEob);
  bw.finish();

  if (out.size() >= src.size()) {
    dst[0] = kMarkerStored;
    if (!src.empty()) std::memcpy(dst.data() + 1, src.data(), src.size());
    return src.size() + 1;
  }
  std::memcpy(dst.data(), out.data(), out.size());
  return out.size();
}

std::size_t DeflateLz::decompress(common::ByteSpan src,
                                  common::MutableByteSpan dst) const {
  if (src.empty()) throw CodecError("deflatelz: empty input");
  const std::uint8_t marker = src[0];
  const common::ByteSpan body = src.subspan(1);
  if (marker == kMarkerStored) {
    if (body.size() != dst.size()) {
      throw CodecError("deflatelz: stored size mismatch");
    }
    if (!body.empty()) std::memcpy(dst.data(), body.data(), body.size());
    return dst.size();
  }
  if (marker != kMarkerCoded) throw CodecError("deflatelz: bad marker");

  BitReader br(body);
  std::vector<std::uint8_t> lit_lengths(kLitLenAlphabet);
  std::vector<std::uint8_t> dist_lengths(kDistAlphabet);
  for (auto& l : lit_lengths) l = static_cast<std::uint8_t>(br.read(4));
  for (auto& l : dist_lengths) l = static_cast<std::uint8_t>(br.read(4));
  // Literals carry no extra bits, so any symbol < 256 may lead a
  // two-symbol LUT pair; length slots and EOB may not (their extra bits /
  // loop exit sit between the codes).
  const HuffmanDecoder lit_dec(lit_lengths, /*pair_limit=*/256);
  const HuffmanDecoder dist_dec(dist_lengths);
  const simd::Kernels& kernels = simd::kernels();

  std::uint8_t* out = dst.data();
  std::uint8_t* const out_end = out + dst.size();
  for (;;) {
    const HuffmanDecoder::Pair pair = lit_dec.decode2(br);
    std::uint32_t sym = pair.first;
    if (pair.second >= 0) {
      // Paired probe: the first symbol is guaranteed to be a literal.
      if (out >= out_end) throw CodecError("deflatelz: output overrun");
      *out++ = static_cast<std::uint8_t>(sym);
      sym = static_cast<std::uint32_t>(pair.second);
    }
    if (sym == kEob) break;
    if (sym < 256) {
      if (out >= out_end) throw CodecError("deflatelz: output overrun");
      *out++ = static_cast<std::uint8_t>(sym);
      continue;
    }
    const std::uint32_t slot = sym - 256;
    if (slot >= kNumLenSlots) throw CodecError("deflatelz: bad length slot");
    std::uint32_t v = 0;
    if (slot == 1) {
      v = 1;
    } else if (slot > 1) {
      v = (1u << (slot - 1)) | br.read(static_cast<int>(slot) - 1);
    }
    const std::size_t len = v + kMinMatch;
    const std::uint32_t dslot = dist_dec.decode(br) + 1;
    std::uint32_t offset = 1u << (dslot - 1);
    if (dslot > 1) offset |= br.read(static_cast<int>(dslot) - 1);
    if (offset > static_cast<std::size_t>(out - dst.data())) {
      throw CodecError("deflatelz: offset before block start");
    }
    if (len > static_cast<std::size_t>(out_end - out)) {
      throw CodecError("deflatelz: match overrun");
    }
    // Overlap-correct for any offset >= 1; exact copy within kWildCopyPad
    // of the block end (decode buffers are exact-size).
    kernels.copy_match(out, offset, len, out_end);
    out += len;
  }
  if (out != out_end) throw CodecError("deflatelz: short output");
  return dst.size();
}

}  // namespace strato::compress
