#include "compress/huffman.h"

#include <algorithm>
#include <queue>

namespace strato::compress {

namespace {

std::uint32_t reverse_bits(std::uint32_t code, int len) {
  std::uint32_t r = 0;
  for (int i = 0; i < len; ++i) {
    r = (r << 1) | (code & 1u);
    code >>= 1;
  }
  return r;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_bits) {
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  std::vector<std::size_t> used;
  for (std::size_t s = 0; s < n; ++s) {
    if (freqs[s] > 0) used.push_back(s);
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }
  if ((std::size_t{1} << max_bits) < used.size()) {
    throw CodecError("huffman: alphabet too large for length limit");
  }

  // 1. Unbounded Huffman via a min-heap over (weight, node).
  struct Node {
    std::uint64_t weight;
    int left;   // node index or -1
    int right;
    std::size_t symbol;  // leaves only
  };
  std::vector<Node> nodes;
  nodes.reserve(used.size() * 2);
  using HeapItem = std::pair<std::uint64_t, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (const auto s : used) {
    nodes.push_back({freqs[s], -1, -1, s});
    heap.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b, 0});
    heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
  }
  // Depth-first assignment of depths.
  std::vector<std::pair<int, int>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.left < 0) {
      lengths[node.symbol] =
          static_cast<std::uint8_t>(std::max(1, depth));
    } else {
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }

  // 2. Length-limit repair (zlib-style): clamp overlong codes to max_bits,
  // then restore the Kraft inequality by deepening the cheapest shallower
  // codes.
  std::uint64_t kraft = 0;  // in units of 2^-max_bits
  const std::uint64_t budget = std::uint64_t{1} << max_bits;
  for (const auto s : used) {
    if (lengths[s] > max_bits) {
      lengths[s] = static_cast<std::uint8_t>(max_bits);
    }
    kraft += budget >> lengths[s];
  }
  while (kraft > budget) {
    // Deepen the lowest-frequency symbol that still has room.
    std::size_t pick = n;
    for (const auto s : used) {
      if (lengths[s] < max_bits &&
          (pick == n || freqs[s] < freqs[pick])) {
        pick = s;
      }
    }
    if (pick == n) throw CodecError("huffman: cannot satisfy length limit");
    kraft -= budget >> lengths[pick];
    ++lengths[pick];
    kraft += budget >> lengths[pick];
  }
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<std::uint8_t>& lengths)
    : codes_(lengths.size(), 0), lengths_(lengths) {
  // Canonical assignment: codes ordered by (length, symbol).
  std::uint32_t bl_count[kMaxHuffmanBits + 1] = {};
  for (const auto l : lengths_) ++bl_count[l];
  bl_count[0] = 0;
  std::uint32_t next_code[kMaxHuffmanBits + 2] = {};
  std::uint32_t code = 0;
  for (int bits = 1; bits <= kMaxHuffmanBits; ++bits) {
    code = (code + bl_count[bits - 1]) << 1;
    next_code[bits] = code;
  }
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    const int len = lengths_[s];
    if (len == 0) continue;
    codes_[s] = reverse_bits(next_code[len]++, len);  // LSB-first stream
  }
}

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t>& lengths,
                               std::uint32_t pair_limit)
    : table_(std::size_t{1} << kHuffmanLutBits) {
  std::uint32_t bl_count[kMaxHuffmanBits + 1] = {};
  std::uint64_t kraft = 0;
  for (const auto l : lengths) {
    if (l > kMaxHuffmanBits) throw CodecError("huffman: bad code length");
    if (l > 0) {
      ++bl_count[l];
      kraft += (std::uint64_t{1} << kMaxHuffmanBits) >> l;
    }
  }
  if (kraft > (std::uint64_t{1} << kMaxHuffmanBits)) {
    throw CodecError("huffman: over-subscribed code");
  }
  std::uint32_t next_code[kMaxHuffmanBits + 2] = {};
  std::uint32_t code = 0;
  std::uint32_t offset = 0;
  for (int bits = 1; bits <= kMaxHuffmanBits; ++bits) {
    code = (code + bl_count[bits - 1]) << 1;
    next_code[bits] = code;
    first_code_[bits] = code;
    count_[bits] = bl_count[bits];
    sym_offset_[bits] = offset;
    offset += bl_count[bits];
  }
  symbols_.resize(offset);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len == 0) continue;
    const std::uint32_t canonical = next_code[len]++;
    // Canonical (length, symbol) order for the walk tables. Symbols are
    // assigned canonical codes in ascending symbol order per length, so
    // this fills each length's run left to right.
    symbols_[sym_offset_[len] + (canonical - first_code_[len])] =
        static_cast<std::uint16_t>(s);
    if (len > kHuffmanLutBits) continue;  // long codes resolve via the walk
    // Short code: claim every LUT window whose low `len` bits match the
    // bit-reversed code (the stream is LSB-first). Prefix-freeness
    // guarantees no window is claimed twice.
    const std::uint32_t base = reverse_bits(canonical, len);
    const std::size_t step = std::size_t{1} << len;
    for (std::size_t i = base; i < table_.size(); i += step) {
      table_[i] = {static_cast<std::uint16_t>(s),
                   static_cast<std::uint8_t>(len), 0, 0};
    }
  }

  if (pair_limit == 0) return;
  // Pairing pass: a window whose first code is short and pairable
  // (symbol < pair_limit, so no raw extra bits can sit between the
  // codes) may contain a second complete code in its remaining bits.
  // The stream is LSB-first, so the remaining bits are window >> length;
  // that sub-window indexes the same table, and the entry found there is
  // the true next code exactly when it fits the bits actually known
  // (length + length2 <= window width) — prefix-freeness makes the
  // zero-filled high index bits irrelevant for a code that fits.
  for (std::size_t i = 0; i < table_.size(); ++i) {
    Entry& e = table_[i];
    if (e.length == 0 || e.symbol >= pair_limit) continue;
    const Entry& e2 = table_[i >> e.length];
    if (e2.length == 0 ||
        static_cast<int>(e.length) + static_cast<int>(e2.length) >
            kHuffmanLutBits) {
      continue;
    }
    e.pair_length = static_cast<std::uint8_t>(e.length + e2.length);
    e.symbol2 = e2.symbol;
  }
}

std::uint32_t HuffmanDecoder::decode_long(BitReader& br) const {
  // The LUT window held no short code: either a long code starts here or
  // the window is invalid. Rebuild the canonical (MSB-first) code bit by
  // bit — the LSB-first stream delivers code bits most-significant-first.
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxHuffmanBits; ++len) {
    code = (code << 1) | br.read(1);
    if (code >= first_code_[len] && code - first_code_[len] < count_[len]) {
      return symbols_[sym_offset_[len] + (code - first_code_[len])];
    }
  }
  throw CodecError("huffman: invalid code");
}

}  // namespace strato::compress
