// Codec interface.
//
// The paper's compression levels map onto concrete codecs (Section III-B):
// level 0 = none, level 1 (LIGHT) = QuickLZ-fastest, level 2 (MEDIUM) =
// QuickLZ tuned for ratio, level 3 (HEAVY) = LZMA. We implement the same
// speed/ratio ladder from scratch: NullCodec, FastLz, MediumLz, HeavyLz.
//
// Codecs are stateless and thread-safe: all working state lives on the
// stack / in scratch buffers per call, so one instance can serve many
// channels concurrently.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "common/bytes.h"

namespace strato::compress {

/// Thrown when decompression encounters malformed or truncated input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Stateless block codec. Blocks are self-contained: no dictionary or
/// probability state survives across compress() calls, which is what lets
/// every framed 128 KB block be decoded independently (Section III-B).
class Codec {
 public:
  virtual ~Codec() = default;

  /// Stable identifier stored in the block frame (see framing.h).
  [[nodiscard]] virtual std::uint8_t id() const = 0;

  /// Human-readable name.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Worst-case compressed size for `n` input bytes. compress() must never
  /// write more than this many bytes.
  [[nodiscard]] virtual std::size_t max_compressed_size(std::size_t n)
      const = 0;

  /// Compress `src` into `dst` (dst.size() >= max_compressed_size(src.size())).
  /// @returns number of bytes written.
  virtual std::size_t compress(common::ByteSpan src,
                               common::MutableByteSpan dst) const = 0;

  /// Decompress `src` into `dst`, whose size must equal the original raw
  /// size (known from the block frame). @returns bytes written (== dst size).
  /// @throws CodecError on malformed input.
  virtual std::size_t decompress(common::ByteSpan src,
                                 common::MutableByteSpan dst) const = 0;

  /// Convenience round-trip helpers allocating owning buffers.
  [[nodiscard]] common::Bytes compress(common::ByteSpan src) const;
  [[nodiscard]] common::Bytes decompress(common::ByteSpan src,
                                         std::size_t raw_size) const;
};

/// Codec ids as stored in block frames.
enum CodecId : std::uint8_t {
  kCodecNull = 0,
  kCodecFastLz = 1,
  kCodecMediumLz = 2,
  kCodecHeavyLz = 3,
};

/// Level 0: stored (memcpy) codec.
class NullCodec final : public Codec {
 public:
  [[nodiscard]] std::uint8_t id() const override { return kCodecNull; }
  [[nodiscard]] std::string name() const override { return "null"; }
  [[nodiscard]] std::size_t max_compressed_size(std::size_t n) const override {
    return n;
  }
  std::size_t compress(common::ByteSpan src,
                       common::MutableByteSpan dst) const override;
  std::size_t decompress(common::ByteSpan src,
                         common::MutableByteSpan dst) const override;
  using Codec::compress;
  using Codec::decompress;
};

}  // namespace strato::compress
