// Codec profiling — the calibration bridge between the real codecs and the
// discrete-event simulator.
//
// The simulator (src/vsim) models compression as a (speed, ratio) pair per
// (level, corpus). Rather than invent numbers, the benches measure the
// actual codecs built in this repository over the actual synthetic corpora
// and feed those measurements into the simulation (DESIGN.md §5.2).
#pragma once

#include <cstddef>

#include "compress/codec.h"
#include "corpus/generator.h"

namespace strato::compress {

/// Measured behaviour of one codec on one data class.
struct CodecProfile {
  double compress_mb_s = 0.0;    ///< raw MB consumed per second compressing
  double decompress_mb_s = 0.0;  ///< raw MB produced per second decompressing
  double ratio = 1.0;            ///< compressed size / raw size, in (0, 1+]
};

/// Run `codec` over `total_bytes` of `gen` output in `block_size` blocks
/// and report wall-clock throughput and mean ratio.
CodecProfile profile_codec(const Codec& codec, corpus::Generator& gen,
                           std::size_t total_bytes,
                           std::size_t block_size = 128 * 1024);

}  // namespace strato::compress
