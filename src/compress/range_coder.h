// Adaptive binary range coder (LZMA-style).
//
// The HEAVY compression level entropy-codes its LZ symbols through this
// coder: 11-bit adaptive probabilities, 2^24 normalisation threshold and
// the carry-propagating shift-low construction of the LZMA reference
// implementation. This is what buys HeavyLz its LZMA-like ratio advantage
// over the byte-aligned LIGHT/MEDIUM formats — at LZMA-like cost.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "compress/codec.h"

namespace strato::compress {

/// Adaptive probability of a bit being 0, in units of 1/2048.
class BitModel {
 public:
  static constexpr std::uint32_t kBits = 11;
  static constexpr std::uint32_t kOne = 1u << kBits;  // 2048
  static constexpr std::uint32_t kMoveBits = 5;

  /// Probability that the next bit is 0 (starts at 1/2).
  [[nodiscard]] std::uint32_t prob() const { return p_; }

  void update_0() { p_ += (kOne - p_) >> kMoveBits; }
  void update_1() { p_ -= p_ >> kMoveBits; }

  /// Branchless update_0/update_1 selected by `bit` — identical fixed
  /// point arithmetic, but compiles to masked adds instead of a
  /// data-dependent branch (the decode hot path's bits are close to
  /// uniform, so the branch form mispredicts heavily).
  void update(std::uint32_t bit) {
    const std::uint32_t neg = 0u - bit;
    p_ += ((kOne - p_) >> kMoveBits) & ~neg;
    p_ -= (p_ >> kMoveBits) & neg;
  }

 private:
  std::uint32_t p_ = kOne / 2;
};

/// Range encoder writing to an owned byte vector.
///
/// The per-bit methods are header-inline on purpose: HEAVY codes every
/// literal bit and match-field bit through them, and keeping the
/// low_/range_ arithmetic inlinable in the caller's loop is worth several
/// cycles per bit (only the byte-emitting shift_low stays out of line).
class RangeEncoder {
 public:
  RangeEncoder() = default;

  /// Encode one bit under an adaptive model. Branchless on the bit value
  /// and single-step normalisation, mirroring RangeDecoder::decode_bit
  /// (see the proof there — prob() in [31, 2017] bounds both outcome
  /// ranges at 2^17).
  void encode_bit(BitModel& m, std::uint32_t bit) {
    const std::uint32_t bound = (range_ >> BitModel::kBits) * m.prob();
    const std::uint32_t neg = 0u - bit;
    low_ += bound & neg;
    range_ = bound + ((range_ - 2 * bound) & neg);
    m.update(bit);
    if (range_ < kTopValue) {
      shift_low();
      range_ <<= 8;
    }
  }

  /// Encode `nbits` equiprobable bits of `value`, MSB first.
  void encode_direct(std::uint32_t value, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) {
      range_ >>= 1;
      low_ += range_ & (0u - ((value >> i) & 1u));
      if (range_ < kTopValue) {
        shift_low();
        range_ <<= 8;
      }
    }
  }

  /// Flush pending state; must be called exactly once, after which the
  /// encoder is spent.
  void finish();

  /// Encoded output (valid after finish()).
  [[nodiscard]] const common::Bytes& bytes() const { return out_; }
  [[nodiscard]] common::Bytes take() { return std::move(out_); }

 private:
  static constexpr std::uint32_t kTopValue = 1u << 24;

  void shift_low();

  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
  common::Bytes out_;
};

/// Range decoder reading from a span. Hot methods are header-inline for
/// the same reason as RangeEncoder's: the HEAVY decode loop runs
/// entirely through decode_bit, and inlining keeps range_/code_ live in
/// registers across the whole symbol loop.
class RangeDecoder {
 public:
  /// Begins decoding; consumes the 5-byte preamble written by the encoder.
  /// @throws CodecError if input is shorter than the preamble.
  explicit RangeDecoder(common::ByteSpan in);

  /// Decode one bit under an adaptive model.
  ///
  /// Branchless on the bit decision: length/distance tree bits carry
  /// close to one bit of entropy each on compressible data, so a
  /// conditional here mispredicts on nearly half the symbol-control
  /// bits. The masked form costs a couple of ALU ops but keeps the
  /// pipeline full; the arithmetic (and therefore the wire format) is
  /// identical to the branchy update_0/update_1 split.
  ///
  /// Normalisation needs at most one step: m.prob() stays within
  /// [31, 2017] (the update rules' fixed points), so both outcome
  /// ranges are >= pre_range * 31/2048 >= 2^17 whenever pre_range >=
  /// kTopValue, and one << 8 restores the invariant.
  std::uint32_t decode_bit(BitModel& m) {
    const std::uint32_t bound = (range_ >> BitModel::kBits) * m.prob();
    const std::uint32_t bit = code_ >= bound ? 1u : 0u;
    const std::uint32_t neg = 0u - bit;
    code_ -= bound & neg;
    // bit ? range_ - bound : bound, without a branch (exact mod 2^32).
    range_ = bound + ((range_ - 2 * bound) & neg);
    m.update(bit);
    if (range_ < kTopValue) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
    return bit;
  }

  /// Decode `nbits` equiprobable bits, MSB first. Direct bits are
  /// uniform by construction, so the bit decision is branchless for the
  /// same reason as decode_bit; range_ >>= 1 keeps it >= 2^23, so one
  /// normalisation step again suffices.
  std::uint32_t decode_direct(int nbits) {
    std::uint32_t result = 0;
    for (int i = 0; i < nbits; ++i) {
      range_ >>= 1;
      const std::uint32_t keep = (code_ - range_) >> 31;  // 1 when bit is 0
      code_ -= range_ & (keep - 1u);
      result = (result << 1) | (1u - keep);
      if (range_ < kTopValue) {
        range_ <<= 8;
        code_ = (code_ << 8) | next_byte();
      }
    }
    return result;
  }

  /// Bytes consumed so far (including preamble).
  [[nodiscard]] std::size_t consumed() const { return pos_; }

 private:
  static constexpr std::uint32_t kTopValue = 1u << 24;

  std::uint8_t next_byte() {
    if (pos_ >= in_.size()) {
      // Reading past the end is tolerated with zero fill: the encoder's
      // final flush may be truncated by framing, and any real corruption
      // is caught by the frame checksum.
      ++pos_;
      return 0;
    }
    return in_[pos_++];
  }

  common::ByteSpan in_;
  std::size_t pos_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint32_t code_ = 0;
};

/// Fixed-depth binary tree of adaptive bit models, encoding `Depth`-bit
/// symbols MSB-first (the standard LZMA bit-tree construction).
template <int Depth>
class BitTree {
 public:
  void encode(RangeEncoder& enc, std::uint32_t symbol) {
    std::uint32_t node = 1;
    for (int i = Depth - 1; i >= 0; --i) {
      const std::uint32_t bit = (symbol >> i) & 1u;
      enc.encode_bit(models_[node], bit);
      node = (node << 1) | bit;
    }
  }

  std::uint32_t decode(RangeDecoder& dec) {
    std::uint32_t node = 1;
    for (int i = 0; i < Depth; ++i) {
      node = (node << 1) | dec.decode_bit(models_[node]);
    }
    return node - (1u << Depth);
  }

 private:
  BitModel models_[1u << Depth];
};

}  // namespace strato::compress
