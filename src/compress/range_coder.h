// Adaptive binary range coder (LZMA-style).
//
// The HEAVY compression level entropy-codes its LZ symbols through this
// coder: 11-bit adaptive probabilities, 2^24 normalisation threshold and
// the carry-propagating shift-low construction of the LZMA reference
// implementation. This is what buys HeavyLz its LZMA-like ratio advantage
// over the byte-aligned LIGHT/MEDIUM formats — at LZMA-like cost.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "compress/codec.h"

namespace strato::compress {

/// Adaptive probability of a bit being 0, in units of 1/2048.
class BitModel {
 public:
  static constexpr std::uint32_t kBits = 11;
  static constexpr std::uint32_t kOne = 1u << kBits;  // 2048
  static constexpr std::uint32_t kMoveBits = 5;

  /// Probability that the next bit is 0 (starts at 1/2).
  [[nodiscard]] std::uint32_t prob() const { return p_; }

  void update_0() { p_ += (kOne - p_) >> kMoveBits; }
  void update_1() { p_ -= p_ >> kMoveBits; }

 private:
  std::uint32_t p_ = kOne / 2;
};

/// Range encoder writing to an owned byte vector.
class RangeEncoder {
 public:
  RangeEncoder() = default;

  /// Encode one bit under an adaptive model.
  void encode_bit(BitModel& m, std::uint32_t bit);

  /// Encode `nbits` equiprobable bits of `value`, MSB first.
  void encode_direct(std::uint32_t value, int nbits);

  /// Flush pending state; must be called exactly once, after which the
  /// encoder is spent.
  void finish();

  /// Encoded output (valid after finish()).
  [[nodiscard]] const common::Bytes& bytes() const { return out_; }
  [[nodiscard]] common::Bytes take() { return std::move(out_); }

 private:
  void shift_low();

  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
  common::Bytes out_;
};

/// Range decoder reading from a span.
class RangeDecoder {
 public:
  /// Begins decoding; consumes the 5-byte preamble written by the encoder.
  /// @throws CodecError if input is shorter than the preamble.
  explicit RangeDecoder(common::ByteSpan in);

  /// Decode one bit under an adaptive model.
  std::uint32_t decode_bit(BitModel& m);

  /// Decode `nbits` equiprobable bits, MSB first.
  std::uint32_t decode_direct(int nbits);

  /// Bytes consumed so far (including preamble).
  [[nodiscard]] std::size_t consumed() const { return pos_; }

 private:
  std::uint8_t next_byte();

  common::ByteSpan in_;
  std::size_t pos_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint32_t code_ = 0;
};

/// Fixed-depth binary tree of adaptive bit models, encoding `Depth`-bit
/// symbols MSB-first (the standard LZMA bit-tree construction).
template <int Depth>
class BitTree {
 public:
  void encode(RangeEncoder& enc, std::uint32_t symbol) {
    std::uint32_t node = 1;
    for (int i = Depth - 1; i >= 0; --i) {
      const std::uint32_t bit = (symbol >> i) & 1u;
      enc.encode_bit(models_[node], bit);
      node = (node << 1) | bit;
    }
  }

  std::uint32_t decode(RangeDecoder& dec) {
    std::uint32_t node = 1;
    for (int i = 0; i < Depth; ++i) {
      node = (node << 1) | dec.decode_bit(models_[node]);
    }
    return node - (1u << Depth);
  }

 private:
  BitModel models_[1u << Depth];
};

}  // namespace strato::compress
