// Self-contained block framing.
//
// Section III-B: Nephele buffers channel data in blocks of at most 128 KB
// and passes each block independently to the currently selected codec;
// every block carries all information needed to decompress it. Our frame:
//
//   offset  size  field
//   0       4     magic "SBK1"
//   4       1     compression level (0..n-1, as chosen by the policy)
//   5       1     codec id (may differ from the level's codec when the
//                 encoder fell back to stored because compression lost)
//   6       2     reserved (zero)
//   8       4     raw payload size (LE)
//   12      4     compressed payload size (LE)
//   16      8     XXH64 of the *raw* payload (LE)
//   24      ...   compressed payload
//
// The checksum is over the raw payload so corruption anywhere in codec or
// channel is detected after decompression.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/lifetime_annotations.h"
#include "compress/codec.h"

namespace strato::compress {

class CodecRegistry;

/// Frame header constants.
inline constexpr std::size_t kFrameHeaderSize = 24;
inline constexpr std::uint32_t kFrameMagic = 0x314B4253u;  // "SBK1" LE
/// The paper's channel block size.
inline constexpr std::size_t kDefaultBlockSize = 128 * 1024;
/// Upper bound on either size field of a well-formed frame. Real blocks
/// top out at the configured block size (paper: 128 KB); the bound leaves
/// generous headroom while turning a tampered length field into a clean
/// rejection instead of a multi-GB allocation or an assembler buffering
/// forever for a payload that can never arrive.
inline constexpr std::size_t kMaxFramePayload = 64 * 1024 * 1024;

/// Parsed frame header.
struct FrameHeader {
  std::uint8_t level = 0;
  std::uint8_t codec_id = 0;
  std::uint32_t raw_size = 0;
  std::uint32_t comp_size = 0;
  std::uint64_t checksum = 0;
};

/// Encode `payload` into a framed block using `codec`, recording `level`.
/// Falls back to stored (NullCodec id) when compression does not help.
/// @returns the full frame (header + payload).
common::Bytes encode_block(const Codec& codec, std::uint8_t level,
                           common::ByteSpan payload);

/// Allocation-free variant: encode into `frame`, reusing its capacity
/// (typically a common::BufferPool buffer). On return frame.size() is the
/// full frame size. Produces bytes identical to encode_block().
/// @returns frame.size().
std::size_t encode_block_into(const Codec& codec, std::uint8_t level,
                              common::ByteSpan payload, common::Bytes& frame);

/// Parse and validate a frame header. @throws CodecError on bad magic or
/// truncated header.
FrameHeader parse_header(common::ByteSpan frame);

/// Zero-copy view of one parsed frame: the validated header plus a span of
/// the compressed payload *inside the caller's receive buffer*. Nothing is
/// copied; the view is valid exactly as long as the underlying buffer
/// bytes stay put (see the ownership rules in DESIGN.md section 9).
struct FrameView {
  FrameHeader header;
  common::ByteSpan payload;     ///< comp_size bytes, borrowed from the buffer
  std::size_t frame_size = 0;   ///< header + payload bytes this frame spans
};

/// Parse one complete frame from the front of `buf` without copying.
/// The returned view's payload borrows `buf`'s storage (lifetimebound):
/// it dies when the underlying buffer moves, reallocates, or — for pooled
/// receive segments — is released back to its BufferPool.
/// @returns nullopt when more bytes are needed (short header or short
/// payload). @throws CodecError on a malformed header.
[[nodiscard]] std::optional<FrameView> try_parse_frame(
    common::ByteSpan buf STRATO_LIFETIME_BOUND);

/// Decode a parsed frame in place: decompress `view.payload` into `raw`
/// (resized to header.raw_size, reusing capacity — typically a pooled
/// buffer) and verify the checksum. The payload span is read where it
/// lies; no intermediate frame copy is made.
/// @throws CodecError on any inconsistency.
void decode_frame_into(const FrameView& view, const CodecRegistry& registry,
                       common::Bytes& raw);

/// Decode one framed block (header + payload, exact size). Verifies the
/// checksum. @throws CodecError on any inconsistency.
common::Bytes decode_block(common::ByteSpan frame,
                           const CodecRegistry& registry);

/// Incremental frame extractor for byte-stream transports: feed arbitrary
/// chunks, pop complete decoded blocks.
///
/// The consumed prefix is tracked as a persistent offset into the buffer;
/// feeding never re-copies unconsumed bytes just because a partial frame
/// is pending. The buffer is compacted only on wraparound — when an append
/// would force the vector to reallocate anyway — so steady-state frame
/// extraction moves each wire byte exactly once. The size of a pending
/// partial frame is cached so repeated next_block() calls while starved do
/// not re-parse the header.
class FrameAssembler {
 public:
  explicit FrameAssembler(const CodecRegistry& registry)
      : registry_(registry) {}

  /// Append received bytes.
  void feed(common::ByteSpan data);

  /// Decode and return the next complete block, or nullopt if more bytes
  /// are needed. @throws CodecError on malformed frames.
  [[nodiscard]] std::optional<common::Bytes> next_block();

  /// Header of the most recently returned block (level/codec statistics).
  [[nodiscard]] const FrameHeader& last_header() const STRATO_LIFETIME_BOUND {
    return last_;
  }

  /// Bytes buffered but not yet consumed.
  [[nodiscard]] std::size_t pending() const { return buf_.size() - off_; }

 private:
  const CodecRegistry& registry_;
  common::Bytes buf_;
  std::size_t off_ = 0;
  /// Total size + header of the pending (partial) frame once its header
  /// has been parsed; size 0 = unknown (header not yet complete).
  std::size_t pending_frame_size_ = 0;
  FrameHeader pending_hdr_;
  FrameHeader last_;
};

}  // namespace strato::compress
