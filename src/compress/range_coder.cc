#include "compress/range_coder.h"

namespace strato::compress {

namespace {
constexpr std::uint32_t kTop = 1u << 24;
}

void RangeEncoder::encode_bit(BitModel& m, std::uint32_t bit) {
  const std::uint32_t bound = (range_ >> BitModel::kBits) * m.prob();
  if (bit == 0) {
    range_ = bound;
    m.update_0();
  } else {
    low_ += bound;
    range_ -= bound;
    m.update_1();
  }
  while (range_ < kTop) {
    shift_low();
    range_ <<= 8;
  }
}

void RangeEncoder::encode_direct(std::uint32_t value, int nbits) {
  for (int i = nbits - 1; i >= 0; --i) {
    range_ >>= 1;
    if ((value >> i) & 1u) low_ += range_;
    while (range_ < kTop) {
      shift_low();
      range_ <<= 8;
    }
  }
}

void RangeEncoder::finish() {
  for (int i = 0; i < 5; ++i) shift_low();
}

void RangeEncoder::shift_low() {
  if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
    std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
    std::uint8_t temp = cache_;
    do {
      out_.push_back(static_cast<std::uint8_t>(temp + carry));
      temp = 0xFF;
    } while (--cache_size_ != 0);
    cache_ = static_cast<std::uint8_t>(low_ >> 24);
  }
  ++cache_size_;
  low_ = (low_ & 0x00FFFFFFu) << 8;
}

RangeDecoder::RangeDecoder(common::ByteSpan in) : in_(in) {
  if (in_.size() < 5) throw CodecError("range decoder: truncated preamble");
  // First byte is always 0 (encoder cache priming); the next four carry the
  // initial code value.
  ++pos_;
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
}

std::uint8_t RangeDecoder::next_byte() {
  if (pos_ >= in_.size()) {
    // Reading past the end is tolerated with zero fill: the encoder's
    // final flush may be truncated by framing, and any real corruption is
    // caught by the frame checksum.
    ++pos_;
    return 0;
  }
  return in_[pos_++];
}

std::uint32_t RangeDecoder::decode_bit(BitModel& m) {
  const std::uint32_t bound = (range_ >> BitModel::kBits) * m.prob();
  std::uint32_t bit;
  if (code_ < bound) {
    range_ = bound;
    m.update_0();
    bit = 0;
  } else {
    code_ -= bound;
    range_ -= bound;
    m.update_1();
    bit = 1;
  }
  while (range_ < (1u << 24)) {
    range_ <<= 8;
    code_ = (code_ << 8) | next_byte();
  }
  return bit;
}

std::uint32_t RangeDecoder::decode_direct(int nbits) {
  std::uint32_t result = 0;
  for (int i = 0; i < nbits; ++i) {
    range_ >>= 1;
    std::uint32_t bit = 0;
    if (code_ >= range_) {
      code_ -= range_;
      bit = 1;
    }
    result = (result << 1) | bit;
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
  }
  return result;
}

}  // namespace strato::compress
