#include "compress/range_coder.h"

namespace strato::compress {

void RangeEncoder::finish() {
  for (int i = 0; i < 5; ++i) shift_low();
}

void RangeEncoder::shift_low() {
  if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
    std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
    std::uint8_t temp = cache_;
    do {
      out_.push_back(static_cast<std::uint8_t>(temp + carry));
      temp = 0xFF;
    } while (--cache_size_ != 0);
    cache_ = static_cast<std::uint8_t>(low_ >> 24);
  }
  ++cache_size_;
  low_ = (low_ & 0x00FFFFFFu) << 8;
}

RangeDecoder::RangeDecoder(common::ByteSpan in) : in_(in) {
  if (in_.size() < 5) throw CodecError("range decoder: truncated preamble");
  // First byte is always 0 (encoder cache priming); the next four carry the
  // initial code value.
  ++pos_;
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
}

}  // namespace strato::compress
