// Parallel block-compression pipeline.
//
// The paper's key integration decision (Section III-B) is that every
// channel block is *self-contained* — it carries its own codec id and
// metadata — precisely so blocks can be (de)compressed independently. This
// pipeline exploits that: the submitting thread hands each raw block to a
// common::ThreadPool worker, workers encode frames concurrently (codecs
// are stateless; per-thread match-finder scratch keeps them share-free),
// and completed frames are re-sequenced into submission order through a
// bounded reorder window before reaching the sink. On the wire the output
// is byte-identical to the serial path — receivers cannot tell the
// difference.
//
// Threading contract:
//   * submit()/flush() are called from ONE thread (the channel writer);
//   * the frame sink and the policy callbacks behind it run on that same
//     submitting thread, in submission order — so the adaptive rate meter
//     observes the AGGREGATE accepted byte rate across all workers while
//     the decision model stays app-data-rate-only, per the paper;
//   * workers only compress; they never touch the sink.
//
// Memory is bounded by the reorder window: at most `depth` blocks are
// in flight (raw copy + frame each), all recycled through a BufferPool.
// submit() blocks when the window is full — that backpressure is exactly
// what the application data rate measurement needs to see.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "compress/registry.h"

namespace strato::compress {

/// Pipeline sizing knobs (surfaced as CompressionSpec::worker_count /
/// pipeline_depth on channels).
struct PipelineConfig {
  /// Compression worker threads. 1 still runs a (single) worker thread;
  /// use the serial CompressingWriter path to avoid threads entirely.
  std::size_t worker_count = 1;
  /// Reorder-window depth = max blocks in flight; 0 = 2 * worker_count.
  std::size_t depth = 0;
};

class ParallelBlockPipeline {
 public:
  /// Receives each completed frame in submission order, on the submitting
  /// thread. `frame` is only valid during the call.
  using FrameSink = std::function<void(
      common::ByteSpan frame, std::size_t raw_size, int level)>;

  ParallelBlockPipeline(const CodecRegistry& registry, PipelineConfig config,
                        FrameSink sink);
  ~ParallelBlockPipeline();

  ParallelBlockPipeline(const ParallelBlockPipeline&) = delete;
  ParallelBlockPipeline& operator=(const ParallelBlockPipeline&) = delete;

  /// Enqueue one block at `level` (clamped to the registry ladder). Copies
  /// the payload into a pooled buffer, so the caller may reuse its block
  /// buffer immediately. Blocks while the reorder window is full,
  /// delivering completed frames while it waits. Rethrows worker errors.
  void submit(int level, common::ByteSpan payload);

  /// Deliver every outstanding frame (blocking), in submission order.
  void flush();

  [[nodiscard]] std::size_t worker_count() const {
    return workers_.size();
  }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::uint64_t blocks_submitted() const { return next_seq_; }
  [[nodiscard]] std::uint64_t blocks_delivered() const {
    return deliver_seq_;
  }
  /// Buffer-recycling counters of the private pool.
  [[nodiscard]] common::BufferPool::Stats pool_stats() const {
    return pool_.stats();
  }

 private:
  struct Slot {
    enum class State { kFree, kPending, kReady };
    State state = State::kFree;
    common::Bytes raw;    // pooled: copy of the submitted payload
    common::Bytes frame;  // pooled: encoded frame (valid when kReady)
    std::size_t raw_size = 0;
    int level = 0;
    std::exception_ptr error;
  };

  void compress_slot(std::uint64_t seq);
  /// Deliver in-order ready frames; with `wait_for_one`, block until the
  /// head frame is ready first. Returns after delivering what it can.
  void deliver_ready(bool wait_for_one);

  const CodecRegistry& registry_;
  FrameSink sink_;
  std::size_t depth_;

  common::Mutex mu_{"ParallelBlockPipeline::mu_"};
  common::CondVar ready_cv_;
  // Not GUARDED_BY(mu_): slots are handed off by protocol — a kPending
  // slot belongs to its worker, a kReady slot to the submitting thread;
  // only the state transition itself happens under mu_.
  std::vector<Slot> slots_;        // ring indexed by seq % depth_
  std::uint64_t next_seq_ = 0;     // next sequence number to submit
  std::uint64_t deliver_seq_ = 0;  // next sequence number to deliver

  common::BufferPool pool_;
  common::ThreadPool workers_;  // declared last: joins before state dies
};

}  // namespace strato::compress
