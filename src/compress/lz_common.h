// Shared LZ match-finding primitives (internal to the compress module).
//
// Both hash-chain match finders (the LIGHT/MEDIUM engine in lz77.cc and the
// HEAVY finder in heavy_lz.cc) share the multiplicative hash and — the
// hot-path win — a per-thread scratch holding the head/prev chain arrays.
// Allocating those arrays per 128 KB block used to cost a 64–512 KB
// allocation plus fresh-page faults per block; with the scratch each
// compression thread (the caller, or each parallel-pipeline worker) touches
// the same warm memory block after block. The common-prefix scan lives in
// common/simd.h (simd::kernels().match_length) so it can use the widest
// compare the host supports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace strato::compress::detail {

inline constexpr std::uint32_t kLzNoPos = 0xFFFFFFFFu;

/// Multiplicative hash of a 4-byte window into `bits` bits. Must agree
/// with simd::Kernels::hash4_bulk, which computes the same function for a
/// run of positions at once.
inline std::uint32_t lz_hash32(std::uint32_t v, int bits) {
  return (v * 2654435761u) >> (32 - bits);
}

/// Reused head/prev arrays for hash-chain match finders. prepare() clears
/// only the head table; stale prev entries are unreachable because chains
/// start at head and every position linked since prepare() wrote its own
/// prev slot before becoming reachable.
struct MatchScratch {
  std::vector<std::uint32_t> head;
  std::vector<std::uint32_t> prev;
  /// Staging buffer for simd::Kernels::hash4_bulk (pre-warm and in-match
  /// insertion runs hash all their positions in one pass, then do the
  /// chain-pointer updates serially).
  std::vector<std::uint32_t> hash_tmp;

  /// Size + clear head for a 2^hash_bits table; ensure prev covers n
  /// positions (pass n = 0 for single-probe finders that keep no chains).
  void prepare(int hash_bits, std::size_t n) {
    head.assign(std::size_t{1} << hash_bits, kLzNoPos);
    if (prev.size() < n) prev.resize(n);
  }
};

/// Per-thread scratch: pipeline workers each get their own, so parallel
/// block compression shares nothing through the match finder.
inline MatchScratch& match_scratch() {
  static thread_local MatchScratch scratch;
  return scratch;
}

}  // namespace strato::compress::detail
