// Shared LZ match-finding primitives (internal to the compress module).
//
// Both hash-chain match finders (the LIGHT/MEDIUM engine in lz77.cc and the
// HEAVY finder in heavy_lz.cc) share the multiplicative hash, the
// word-at-a-time common-prefix scan and — the hot-path win — a per-thread
// scratch holding the head/prev chain arrays. Allocating those arrays per
// 128 KB block used to cost a 64–512 KB allocation plus fresh-page faults
// per block; with the scratch each compression thread (the caller, or each
// parallel-pipeline worker) touches the same warm memory block after block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace strato::compress::detail {

inline constexpr std::uint32_t kLzNoPos = 0xFFFFFFFFu;

/// Multiplicative hash of a 4-byte window into `bits` bits.
inline std::uint32_t lz_hash32(std::uint32_t v, int bits) {
  return (v * 2654435761u) >> (32 - bits);
}

/// Length of the common prefix of [a..limit) and [b..), a > b,
/// word-at-a-time. Safe because b < a implies b + 8 <= limit whenever
/// a + 8 <= limit.
inline std::size_t lz_match_length(const std::uint8_t* a,
                                   const std::uint8_t* b,
                                   const std::uint8_t* limit) {
  const std::uint8_t* start = a;
  while (a + 8 <= limit) {
    const std::uint64_t diff = common::load_u64(a) ^ common::load_u64(b);
    if (diff != 0) {
      return static_cast<std::size_t>(a - start) +
             static_cast<std::size_t>(__builtin_ctzll(diff) >> 3);
    }
    a += 8;
    b += 8;
  }
  while (a < limit && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<std::size_t>(a - start);
}

/// Reused head/prev arrays for hash-chain match finders. prepare() clears
/// only the head table; stale prev entries are unreachable because chains
/// start at head and every position linked since prepare() wrote its own
/// prev slot before becoming reachable.
struct MatchScratch {
  std::vector<std::uint32_t> head;
  std::vector<std::uint32_t> prev;

  /// Size + clear head for a 2^hash_bits table; ensure prev covers n
  /// positions (pass n = 0 for single-probe finders that keep no chains).
  void prepare(int hash_bits, std::size_t n) {
    head.assign(std::size_t{1} << hash_bits, kLzNoPos);
    if (prev.size() < n) prev.resize(n);
  }
};

/// Per-thread scratch: pipeline workers each get their own, so parallel
/// block compression shares nothing through the match finder.
inline MatchScratch& match_scratch() {
  static thread_local MatchScratch scratch;
  return scratch;
}

}  // namespace strato::compress::detail
