// HEAVY codec: LZ77 + adaptive range coding (LZMA analogue).
//
// Level 3 of the ladder. Deep hash-chain match finding over the whole
// block plus range-coded literals/lengths/distances give a distinctly
// better ratio than the byte-aligned LIGHT/MEDIUM formats at roughly an
// order of magnitude lower speed — the same trade QuickLZ vs LZMA offers
// in the paper.
//
// Stream layout per block: 1 marker byte (0 = range-coded, 1 = stored raw,
// used when entropy coding cannot beat the input) followed by either the
// range-coder stream or the raw bytes. All probability models reset per
// block, keeping blocks self-contained.
#pragma once

#include "compress/codec.h"

namespace strato::compress {

/// Match-finder selection for HeavyLz. Both produce the same wire format
/// (one decoder serves both); they differ in how the encoder parses.
enum class HeavyFinder {
  /// Deep hash chains (default): fast, probe-depth-limited heuristic.
  kHashChain,
  /// Suffix-array longest-previous-factor parse (see suffix_match.h):
  /// slower to index, but every match is the true longest available.
  kSuffixArray,
};

/// Level 3, HEAVY: see file comment.
class HeavyLz final : public Codec {
 public:
  HeavyLz() = default;
  explicit HeavyLz(HeavyFinder finder) : finder_(finder) {}

  [[nodiscard]] std::uint8_t id() const override { return kCodecHeavyLz; }
  [[nodiscard]] std::string name() const override { return "heavylz"; }
  [[nodiscard]] std::size_t max_compressed_size(std::size_t n) const override {
    return n + 16;
  }
  std::size_t compress(common::ByteSpan src,
                       common::MutableByteSpan dst) const override;
  std::size_t decompress(common::ByteSpan src,
                         common::MutableByteSpan dst) const override;
  using Codec::compress;
  using Codec::decompress;

 private:
  HeavyFinder finder_ = HeavyFinder::kHashChain;
};

}  // namespace strato::compress
