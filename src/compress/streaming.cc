#include "compress/streaming.h"

#include <algorithm>

#include "common/buffer_pool.h"

namespace strato::compress {

namespace {

/// Keep only the trailing `window` bytes of `history` after appending
/// `added`.
void roll(common::Bytes& history, common::ByteSpan added,
          std::size_t window) {
  history.insert(history.end(), added.begin(), added.end());
  if (history.size() > window) {
    history.erase(history.begin(),
                  history.begin() +
                      static_cast<std::ptrdiff_t>(history.size() - window));
  }
}

}  // namespace

common::Bytes StreamingLzCompressor::compress_block(common::ByteSpan raw) {
  // Contiguous work buffer (retained window followed by the new block),
  // recycled through the shared pool — one fewer per-block allocation.
  common::PoolLease buffer(common::BufferPool::shared(),
                              history_.size() + raw.size());
  buffer->insert(buffer->end(), history_.begin(), history_.end());
  buffer->insert(buffer->end(), raw.begin(), raw.end());

  common::Bytes out(lz77_max_compressed_size(raw.size()));
  out.resize(
      lz77_compress_with_history(*buffer, history_.size(), out, params_));
  roll(history_, raw, window_);
  return out;
}

common::Bytes StreamingLzDecompressor::decompress_block(
    common::ByteSpan comp, std::size_t raw_size) {
  common::PoolLease buffer(common::BufferPool::shared(),
                              history_.size() + raw_size);
  buffer->resize(history_.size() + raw_size);
  std::copy(history_.begin(), history_.end(), buffer->begin());
  lz77_decompress_with_history(comp, *buffer, history_.size(), raw_size);
  common::Bytes raw(buffer->begin() +
                        static_cast<std::ptrdiff_t>(history_.size()),
                    buffer->end());
  roll(history_, raw, window_);
  return raw;
}

}  // namespace strato::compress
