#include "compress/framing.h"

#include <cstring>

#include "common/checksum.h"
#include "compress/registry.h"

namespace strato::compress {

common::Bytes encode_block(const Codec& codec, std::uint8_t level,
                           common::ByteSpan payload) {
  common::Bytes frame;
  encode_block_into(codec, level, payload, frame);
  return frame;
}

std::size_t encode_block_into(const Codec& codec, std::uint8_t level,
                              common::ByteSpan payload, common::Bytes& frame) {
  frame.resize(kFrameHeaderSize + codec.max_compressed_size(payload.size()));
  std::size_t comp_size = codec.compress(
      payload, common::MutableByteSpan(frame).subspan(kFrameHeaderSize));
  std::uint8_t codec_id = codec.id();
  if (comp_size >= payload.size() && codec_id != kCodecNull) {
    // Compression lost; store raw so the frame never expands beyond the
    // header overhead.
    comp_size = payload.size();
    codec_id = kCodecNull;
    std::memcpy(frame.data() + kFrameHeaderSize, payload.data(),
                payload.size());
  }
  frame.resize(kFrameHeaderSize + comp_size);

  std::uint8_t* h = frame.data();
  common::store_le32(h, kFrameMagic);
  h[4] = level;
  h[5] = codec_id;
  common::store_le16(h + 6, 0);
  common::store_le32(h + 8, static_cast<std::uint32_t>(payload.size()));
  common::store_le32(h + 12, static_cast<std::uint32_t>(comp_size));
  common::store_le64(h + 16, common::xxh64(payload));
  return frame.size();
}

FrameHeader parse_header(common::ByteSpan frame) {
  if (frame.size() < kFrameHeaderSize) {
    throw CodecError("frame: truncated header");
  }
  if (common::load_le32(frame.data()) != kFrameMagic) {
    throw CodecError("frame: bad magic");
  }
  if (common::load_le16(frame.data() + 6) != 0) {
    throw CodecError("frame: reserved bytes set");
  }
  FrameHeader hdr;
  hdr.level = frame[4];
  hdr.codec_id = frame[5];
  hdr.raw_size = common::load_le32(frame.data() + 8);
  hdr.comp_size = common::load_le32(frame.data() + 12);
  hdr.checksum = common::load_le64(frame.data() + 16);
  if (hdr.raw_size > kMaxFramePayload) {
    throw CodecError("frame: implausible raw size");
  }
  // The encoder's stored fallback guarantees comp_size <= raw_size for
  // every well-formed frame, so a larger value is always tampering.
  if (hdr.comp_size > hdr.raw_size) {
    throw CodecError("frame: compressed size exceeds raw size");
  }
  return hdr;
}

common::Bytes decode_block(common::ByteSpan frame,
                           const CodecRegistry& registry) {
  const FrameHeader hdr = parse_header(frame);
  if (frame.size() != kFrameHeaderSize + hdr.comp_size) {
    throw CodecError("frame: size mismatch");
  }
  const Codec& codec = registry.codec_by_id(hdr.codec_id);
  common::Bytes raw(hdr.raw_size);
  codec.decompress(frame.subspan(kFrameHeaderSize), raw);
  if (common::xxh64(raw) != hdr.checksum) {
    throw CodecError("frame: checksum mismatch");
  }
  return raw;
}

void FrameAssembler::feed(common::ByteSpan data) {
  // Compact the buffer when the consumed prefix dominates.
  if (off_ > 0 && off_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<common::Bytes> FrameAssembler::next_block() {
  const std::size_t avail = buf_.size() - off_;
  if (avail < kFrameHeaderSize) return std::nullopt;
  const common::ByteSpan view(buf_.data() + off_, avail);
  const FrameHeader hdr = parse_header(view);
  const std::size_t total = kFrameHeaderSize + hdr.comp_size;
  if (avail < total) return std::nullopt;
  common::Bytes block = decode_block(view.subspan(0, total), registry_);
  last_ = hdr;
  off_ += total;
  return block;
}

}  // namespace strato::compress
