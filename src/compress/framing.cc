#include "compress/framing.h"

#include <cstring>

#include "common/checksum.h"
#include "compress/registry.h"

namespace strato::compress {

common::Bytes encode_block(const Codec& codec, std::uint8_t level,
                           common::ByteSpan payload) {
  common::Bytes frame;
  encode_block_into(codec, level, payload, frame);
  return frame;
}

std::size_t encode_block_into(const Codec& codec, std::uint8_t level,
                              common::ByteSpan payload, common::Bytes& frame) {
  frame.resize(kFrameHeaderSize + codec.max_compressed_size(payload.size()));
  std::size_t comp_size = codec.compress(
      payload, common::MutableByteSpan(frame).subspan(kFrameHeaderSize));
  std::uint8_t codec_id = codec.id();
  if (comp_size >= payload.size() && codec_id != kCodecNull) {
    // Compression lost; store raw so the frame never expands beyond the
    // header overhead. Send-side stored fallback: the one sanctioned
    // payload copy in the encoder.
    comp_size = payload.size();
    codec_id = kCodecNull;
    if (!payload.empty()) {
      std::memcpy(frame.data() + kFrameHeaderSize,  // strato-lint: allow(copy)
                  payload.data(), payload.size());
    }
  }
  frame.resize(kFrameHeaderSize + comp_size);

  std::uint8_t* h = frame.data();
  common::store_le32(h, kFrameMagic);
  h[4] = level;
  h[5] = codec_id;
  common::store_le16(h + 6, 0);
  common::store_le32(h + 8, static_cast<std::uint32_t>(payload.size()));
  common::store_le32(h + 12, static_cast<std::uint32_t>(comp_size));
  common::store_le64(h + 16, common::xxh64(payload));
  return frame.size();
}

FrameHeader parse_header(common::ByteSpan frame) {
  if (frame.size() < kFrameHeaderSize) {
    throw CodecError("frame: truncated header");
  }
  if (common::load_le32(frame.data()) != kFrameMagic) {
    throw CodecError("frame: bad magic");
  }
  if (common::load_le16(frame.data() + 6) != 0) {
    throw CodecError("frame: reserved bytes set");
  }
  FrameHeader hdr;
  hdr.level = frame[4];
  hdr.codec_id = frame[5];
  hdr.raw_size = common::load_le32(frame.data() + 8);
  hdr.comp_size = common::load_le32(frame.data() + 12);
  hdr.checksum = common::load_le64(frame.data() + 16);
  if (hdr.raw_size > kMaxFramePayload) {
    throw CodecError("frame: implausible raw size");
  }
  // The encoder's stored fallback guarantees comp_size <= raw_size for
  // every well-formed frame, so a larger value is always tampering.
  if (hdr.comp_size > hdr.raw_size) {
    throw CodecError("frame: compressed size exceeds raw size");
  }
  return hdr;
}

std::optional<FrameView> try_parse_frame(common::ByteSpan buf) {
  if (buf.size() < kFrameHeaderSize) return std::nullopt;
  FrameView view;
  view.header = parse_header(buf);
  view.frame_size = kFrameHeaderSize + view.header.comp_size;
  if (buf.size() < view.frame_size) return std::nullopt;
  view.payload = buf.subspan(kFrameHeaderSize, view.header.comp_size);
  return view;
}

void decode_frame_into(const FrameView& view, const CodecRegistry& registry,
                       common::Bytes& raw) {
  const Codec& codec = registry.codec_by_id(view.header.codec_id);
  raw.resize(view.header.raw_size);
  codec.decompress(view.payload, raw);
  if (common::xxh64(raw) != view.header.checksum) {
    throw CodecError("frame: checksum mismatch");
  }
}

common::Bytes decode_block(common::ByteSpan frame,
                           const CodecRegistry& registry) {
  const FrameHeader hdr = parse_header(frame);
  if (frame.size() != kFrameHeaderSize + hdr.comp_size) {
    throw CodecError("frame: size mismatch");
  }
  FrameView view;
  view.header = hdr;
  view.payload = frame.subspan(kFrameHeaderSize);
  view.frame_size = frame.size();
  common::Bytes raw;
  decode_frame_into(view, registry, raw);
  return raw;
}

void FrameAssembler::feed(common::ByteSpan data) {
  // Wraparound-only compaction: unconsumed bytes move at most once, and
  // only when the append could not reuse existing capacity anyway. A fully
  // consumed buffer just resets the offset (no byte moves at all).
  if (off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  } else if (off_ > 0 && buf_.size() + data.size() > buf_.capacity()) {
    buf_.erase(buf_.begin(),  // strato-lint: allow(copy)
               buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  // The receive-buffer append: the single sanctioned wire-byte copy on the
  // serial receive path.
  buf_.insert(buf_.end(), data.begin(), data.end());  // strato-lint: allow(copy)
}

std::optional<common::Bytes> FrameAssembler::next_block() {
  const std::size_t avail = buf_.size() - off_;
  // Each frame's header is parsed exactly once: cached on the first call
  // that sees it complete, reused while starved for payload bytes.
  if (pending_frame_size_ == 0) {
    if (avail < kFrameHeaderSize) return std::nullopt;
    pending_hdr_ = parse_header(common::ByteSpan(buf_.data() + off_, avail));
    pending_frame_size_ = kFrameHeaderSize + pending_hdr_.comp_size;
  }
  if (avail < pending_frame_size_) return std::nullopt;
  FrameView view;
  view.header = pending_hdr_;
  view.payload = common::ByteSpan(buf_.data() + off_ + kFrameHeaderSize,
                                  pending_hdr_.comp_size);
  view.frame_size = pending_frame_size_;
  common::Bytes block;
  decode_frame_into(view, registry_, block);
  last_ = view.header;
  off_ += view.frame_size;
  pending_frame_size_ = 0;
  return block;
}

}  // namespace strato::compress
