// Canonical, length-limited Huffman coding.
//
// Code lengths come from an unbounded Huffman build followed by a
// zlib-style length-limit repair (clamp to the maximum, then deepen the
// cheapest shallower codes until the Kraft inequality holds again), and
// are canonicalized so only the length array needs to be transmitted
// (4 bits per symbol). Used by the DeflateLz codec.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/bitstream.h"

namespace strato::compress {

/// Maximum code length supported (fits the 4-bit on-wire length field).
inline constexpr int kMaxHuffmanBits = 15;

/// Width of the decoder's single-level fast-path lookup table. Codes of at
/// most this many bits (the overwhelming majority — canonical Huffman puts
/// frequent symbols in short codes) resolve with one peek + one table
/// load; longer codes fall back to the canonical per-length walk. 10 bits
/// keeps the table at 1024 entries (4 KB, L1-resident) and makes per-block
/// decoder construction ~32x cheaper than a full 2^15 table — the build
/// cost is paid for every framed block, so it dominates entropy-decode
/// time on short blocks.
inline constexpr int kHuffmanLutBits = 10;

/// Compute length-limited code lengths for the given symbol frequencies
/// (Huffman + repair). Symbols with zero frequency get length 0.
/// If fewer than two symbols occur, the occurring symbol gets length 1.
/// @throws CodecError if the alphabet cannot be coded within max_bits
/// (only possible when 2^max_bits < number of used symbols).
std::vector<std::uint8_t> huffman_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_bits = kMaxHuffmanBits);

/// Canonical encoder table built from code lengths.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(const std::vector<std::uint8_t>& lengths);

  /// Emit the code for `symbol`.
  void encode(BitWriter& bw, std::uint32_t symbol) const {
    bw.write(codes_[symbol], lengths_[symbol]);
  }

  [[nodiscard]] int length(std::uint32_t symbol) const {
    return lengths_[symbol];
  }

 private:
  std::vector<std::uint32_t> codes_;  // bit-reversed for LSB-first writing
  std::vector<std::uint8_t> lengths_;
};

/// Canonical decoder built from the same lengths. Two-tier: a
/// kHuffmanLutBits-wide table resolves short codes in one load; codes
/// longer than the window fall back to a canonical first-code walk
/// (slow-path entry decode(), cold by construction — long codes are rare
/// symbols).
///
/// With a nonzero `pair_limit` the table additionally resolves TWO
/// symbols per probe whenever the window contains two complete short
/// codes and the first symbol is below pair_limit. The limit exists
/// because the bit stream may interleave raw extra bits after some
/// symbols (DEFLATE length slots): the second code only sits directly
/// after the first in the window when the first symbol carries no extra
/// bits, which the caller guarantees for symbols < pair_limit. The
/// second symbol of a pair may be anything — its own extra bits follow
/// the pair's code bits in the stream either way.
class HuffmanDecoder {
 public:
  /// @throws CodecError when the length array is not a valid (sub-)Kraft
  /// code.
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths,
                          std::uint32_t pair_limit = 0);

  /// Decode the next symbol. @throws CodecError on an invalid code.
  std::uint32_t decode(BitReader& br) const {
    const Entry e = table_[br.peek(kHuffmanLutBits)];
    if (e.length != 0) {
      br.skip(e.length);
      return e.symbol;
    }
    return decode_long(br);
  }

  /// One or two symbols from a single table probe. `second` is >= 0 only
  /// when a pair resolved (requires a nonzero pair_limit at construction;
  /// the first symbol of a pair is always < pair_limit).
  struct Pair {
    std::uint32_t first;
    std::int32_t second;  // -1 = no second symbol this probe
  };
  Pair decode2(BitReader& br) const {
    const Entry e = table_[br.peek(kHuffmanLutBits)];
    if (e.pair_length != 0) {
      br.skip(e.pair_length);
      return {e.symbol, e.symbol2};
    }
    if (e.length != 0) {
      br.skip(e.length);
      return {e.symbol, -1};
    }
    return {decode_long(br), -1};
  }

 private:
  /// Canonical MSB-first walk for codes longer than the LUT window (and
  /// the CodecError for windows no code occupies).
  std::uint32_t decode_long(BitReader& br) const;

  // Fast path: kHuffmanLutBits-bit window -> (symbol, len) for every code
  // of length <= kHuffmanLutBits; length 0 = fall back to the walk.
  // pair_length != 0 marks windows holding two complete codes (symbol
  // then symbol2, pair_length bits together).
  struct Entry {
    std::uint16_t symbol = 0;
    std::uint8_t length = 0;
    std::uint8_t pair_length = 0;
    std::uint16_t symbol2 = 0;
  };
  std::vector<Entry> table_;
  // Walk tables, indexed by code length: first canonical code, number of
  // codes, and the offset of that length's first symbol in symbols_
  // (symbols in canonical (length, symbol) order).
  std::uint32_t first_code_[kMaxHuffmanBits + 1] = {};
  std::uint32_t count_[kMaxHuffmanBits + 1] = {};
  std::uint32_t sym_offset_[kMaxHuffmanBits + 1] = {};
  std::vector<std::uint16_t> symbols_;
};

}  // namespace strato::compress
