// Canonical, length-limited Huffman coding.
//
// Code lengths come from an unbounded Huffman build followed by a
// zlib-style length-limit repair (clamp to the maximum, then deepen the
// cheapest shallower codes until the Kraft inequality holds again), and
// are canonicalized so only the length array needs to be transmitted
// (4 bits per symbol). Used by the DeflateLz codec.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/bitstream.h"

namespace strato::compress {

/// Maximum code length supported (fits the 4-bit on-wire length field).
inline constexpr int kMaxHuffmanBits = 15;

/// Compute length-limited code lengths for the given symbol frequencies
/// (Huffman + repair). Symbols with zero frequency get length 0.
/// If fewer than two symbols occur, the occurring symbol gets length 1.
/// @throws CodecError if the alphabet cannot be coded within max_bits
/// (only possible when 2^max_bits < number of used symbols).
std::vector<std::uint8_t> huffman_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_bits = kMaxHuffmanBits);

/// Canonical encoder table built from code lengths.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(const std::vector<std::uint8_t>& lengths);

  /// Emit the code for `symbol`.
  void encode(BitWriter& bw, std::uint32_t symbol) const {
    bw.write(codes_[symbol], lengths_[symbol]);
  }

  [[nodiscard]] int length(std::uint32_t symbol) const {
    return lengths_[symbol];
  }

 private:
  std::vector<std::uint32_t> codes_;  // bit-reversed for LSB-first writing
  std::vector<std::uint8_t> lengths_;
};

/// Canonical decoder built from the same lengths.
class HuffmanDecoder {
 public:
  /// @throws CodecError when the length array is not a valid (sub-)Kraft
  /// code.
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths);

  /// Decode the next symbol. @throws CodecError on an invalid code.
  std::uint32_t decode(BitReader& br) const;

 private:
  // Single-level lookup table: kMaxHuffmanBits-bit window -> (symbol, len).
  struct Entry {
    std::uint16_t symbol = 0;
    std::uint8_t length = 0;  // 0 = invalid window
  };
  std::vector<Entry> table_;
};

}  // namespace strato::compress
