#include "compress/profiler.h"

#include <chrono>

namespace strato::compress {

CodecProfile profile_codec(const Codec& codec, corpus::Generator& gen,
                           std::size_t total_bytes, std::size_t block_size) {
  using clock = std::chrono::steady_clock;
  CodecProfile profile;
  if (total_bytes == 0 || block_size == 0) return profile;

  common::Bytes raw(block_size);
  common::Bytes comp(codec.max_compressed_size(block_size));
  common::Bytes back(block_size);

  std::size_t processed = 0;
  std::size_t comp_total = 0;
  double comp_seconds = 0.0;
  double decomp_seconds = 0.0;

  while (processed < total_bytes) {
    const std::size_t n = std::min(block_size, total_bytes - processed);
    gen.generate(common::MutableByteSpan(raw).subspan(0, n));

    const auto c0 = clock::now();
    const std::size_t c =
        codec.compress(common::ByteSpan(raw.data(), n), comp);
    const auto c1 = clock::now();
    codec.decompress(common::ByteSpan(comp.data(), c),
                     common::MutableByteSpan(back).subspan(0, n));
    const auto c2 = clock::now();

    comp_seconds += std::chrono::duration<double>(c1 - c0).count();
    decomp_seconds += std::chrono::duration<double>(c2 - c1).count();
    comp_total += c;
    processed += n;
  }

  const double mb = static_cast<double>(processed) / 1e6;
  profile.compress_mb_s = comp_seconds > 0 ? mb / comp_seconds : 1e9;
  profile.decompress_mb_s = decomp_seconds > 0 ? mb / decomp_seconds : 1e9;
  profile.ratio =
      static_cast<double>(comp_total) / static_cast<double>(processed);
  return profile;
}

}  // namespace strato::compress
