#!/usr/bin/env bash
# Run clang-tidy (root .clang-tidy: bugprone-*, concurrency-*,
# performance-*) over src/ using the compilation database that every
# configure exports (CMAKE_EXPORT_COMPILE_COMMANDS ON). No-ops cleanly
# when clang-tidy is not installed so GCC-only containers stay green.
#
# Usage: scripts/check_tidy.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "check_tidy: $TIDY not found — skipping (install clang-tidy to enable)."
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "check_tidy: $BUILD_DIR/compile_commands.json missing — configuring."
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "== clang-tidy over ${#SOURCES[@]} files =="
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
echo "check_tidy: clean."
