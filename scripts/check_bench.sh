#!/usr/bin/env bash
# Benchmark trajectory gate: re-run the scaling benches and compare them
# against the committed BENCH_pipeline.json / BENCH_decode.json /
# BENCH_codec.json / BENCH_transport.json at the repo root.
#
#   scripts/check_bench.sh [build-dir] [--update]
#
# Comparison rules (see scripts/check_bench.sh --help and DESIGN.md §9):
#   * Deterministic fields (corpus_seed, block_size, blocks, ratio,
#     identity_check, the set of result rows) must match EXACTLY — any
#     drift means the wire format or a codec changed and the baseline
#     must be regenerated consciously with --update.
#   * Timing fields (mib_per_s) carry a relative tolerance band
#     (BENCH_TOL, default 0.50): a row more than the band SLOWER than
#     the committed baseline is a REGRESSION (exit 1). Timing is only
#     compared when the committed baseline was recorded on a machine
#     with the same hardware_concurrency — numbers from different
#     hardware are not comparable and are skipped with a note.
#   * BENCH_MIN_GAIN (default 0) raises the bar for the single-core
#     codec rows (bench_codec_micro): on same-hardware runs every fresh
#     mib_per_s must be >= committed x (1 + BENCH_MIN_GAIN), i.e. the
#     kernel trajectory must move UP, not merely avoid regressing. Use
#     it when landing a perf PR against the pre-PR baseline (e.g.
#     BENCH_MIN_GAIN=0.1 scripts/check_bench.sh), then --update to
#     commit the new trajectory.
#   * When hardware_concurrency >= 4, the parallel acceptance floor is
#     asserted on the fresh run: speedup_vs_1 >= 2.0 at workers=4 (the
#     decode-pipeline acceptance target; the encode pipeline shares it
#     as a conservative floor).
#   * --update rewrites the committed JSON from the fresh run.
set -u
cd "$(dirname "$0")/.."

BUILD="build"
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    --help|-h) sed -n '2,31p' "$0"; exit 0 ;;
    *) BUILD="$arg" ;;
  esac
done

TOL="${BENCH_TOL:-0.50}"
MIN_GAIN="${BENCH_MIN_GAIN:-0}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

status=0
for pair in "bench_pipeline_scaling:BENCH_pipeline.json" \
            "bench_decode_scaling:BENCH_decode.json" \
            "bench_fleet_scale:BENCH_fleet.json" \
            "bench_codec_micro:BENCH_codec.json" \
            "bench_transport_loopback:BENCH_transport.json"; do
  bench="${pair%%:*}"
  committed="${pair##*:}"
  bin="$BUILD/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "!!! $bench: not built ($bin missing) — build first" >&2
    status=1
    continue
  fi
  fresh="$TMP/$committed"
  echo "=== $bench ==="
  if ! "$bin" "$fresh" >/dev/null; then
    echo "!!! $bench: run failed" >&2
    status=1
    continue
  fi
  if [ "$UPDATE" -eq 1 ] || [ ! -f "$committed" ]; then
    if [ ! -f "$committed" ] && [ "$UPDATE" -eq 0 ]; then
      echo "no committed $committed — writing initial baseline"
    fi
    cp "$fresh" "$committed"
    echo "baseline updated: $committed"
    continue
  fi
  if ! python3 - "$committed" "$fresh" "$TOL" "$MIN_GAIN" <<'EOF'
import json, sys

committed_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
min_gain = float(sys.argv[4])
with open(committed_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    cur = json.load(f)

# Per-bench comparison schema, selected by the JSON's "bench" field:
#   top      top-level fields that must match exactly
#   key      columns identifying a result row
#   det      row columns that must match exactly
#   timing   higher-is-better throughput column under the tolerance band
#   speedup_floor  assert best speedup_vs_1 at 4 workers (scaling benches)
#   min_gain applies the BENCH_MIN_GAIN floor: every same-hardware row
#            must show fresh >= committed x (1 + min_gain) — the
#            single-core codec trajectory must move up, not just hold
SCHEMAS = {
    "codec_micro": {
        "top": ["bench", "block_size", "blocks", "corpus_seed",
                "identity_check"],
        "key": ["corpus", "level", "op"],
        "det": ["blocks", "ratio"],
        "timing": "mib_per_s",
        "speedup_floor": False,
        "min_gain": True,
    },
    "transport_loopback": {
        "top": ["bench", "block_size", "corpus_seed", "total_mib",
                "identity_check"],
        "key": ["level", "conns", "workers"],
        "det": ["blocks", "ratio"],
        "timing": "mib_per_s",
        "speedup_floor": False,
    },
    "fleet_scale": {
        "top": ["bench", "seed", "epoch_ms", "flows_target", "drain_workers",
                "flows_total", "flows_completed", "epochs",
                "sim_completed_s", "p50_s", "p99_s", "p999_s",
                "metrics_digest"],
        "key": ["name"],
        "det": ["spawned", "admitted", "rejected", "completed", "p99_s"],
        "timing": "kflows_per_s",
        "speedup_floor": False,
        # BENCH_MIN_GAIN applies to the top-level kflows_per_s figure —
        # the fleet has no per-row timing column.
        "min_gain": True,
    },
}
DEFAULT_SCHEMA = {
    "top": ["bench", "block_size", "corpus_seed", "total_mib",
            "identity_check"],
    "key": ["corpus", "level", "workers"],
    "det": ["blocks", "ratio"],
    "timing": "mib_per_s",
    "speedup_floor": True,
}
schema = SCHEMAS.get(base.get("bench"), DEFAULT_SCHEMA)
DETERMINISTIC_TOP = schema["top"]
KEY_COLS = schema["key"]
DETERMINISTIC_COLS = schema["det"]
TIMING_COL = schema["timing"]

failures = []
for k in DETERMINISTIC_TOP:
    if base.get(k) != cur.get(k):
        failures.append(f"{k}: committed {base.get(k)!r} != fresh {cur.get(k)!r}")

def key(row):
    return tuple(row.get(c) for c in KEY_COLS)

base_rows = {key(r): r for r in base.get("results", [])}
cur_rows = {key(r): r for r in cur.get("results", [])}
if set(base_rows) != set(cur_rows):
    failures.append(f"result rows differ: committed {sorted(base_rows)} "
                    f"!= fresh {sorted(cur_rows)}")

same_hw = base.get("hardware_concurrency") == cur.get("hardware_concurrency")
if not same_hw:
    print(f"note: hardware_concurrency differs (committed "
          f"{base.get('hardware_concurrency')} vs fresh "
          f"{cur.get('hardware_concurrency')}) — timing band skipped")

regressions = []
for k in sorted(set(base_rows) & set(cur_rows)):
    b, c = base_rows[k], cur_rows[k]
    for col in DETERMINISTIC_COLS:
        if b.get(col) != c.get(col):
            failures.append(f"{k} {col}: committed {b.get(col)!r} != "
                            f"fresh {c.get(col)!r}")
    if same_hw and b.get(TIMING_COL, 0) and b[TIMING_COL] > 0 \
            and c.get(TIMING_COL) is not None:
        rel = c[TIMING_COL] / b[TIMING_COL] - 1.0
        if rel < -tol:
            regressions.append(f"{k}: {TIMING_COL} {b[TIMING_COL]:.1f} -> "
                               f"{c[TIMING_COL]:.1f} ({rel:+.0%})")
        elif rel > tol:
            print(f"note: {k} improved {rel:+.0%} — consider --update")
        if schema.get("min_gain") and min_gain > 0 \
                and c[TIMING_COL] < b[TIMING_COL] * (1.0 + min_gain):
            regressions.append(
                f"{k}: {TIMING_COL} {c[TIMING_COL]:.1f} below min_gain "
                f"floor {b[TIMING_COL] * (1.0 + min_gain):.1f} "
                f"(committed {b[TIMING_COL]:.1f} x {1.0 + min_gain:.2f})")

# Fleet rows carry no per-row timing column; band the top-level
# throughput figure instead, and hold it to the BENCH_MIN_GAIN upward
# floor when landing a perf PR against the pre-PR baseline.
if same_hw and TIMING_COL in base and TIMING_COL in cur \
        and base[TIMING_COL] > 0:
    rel = cur[TIMING_COL] / base[TIMING_COL] - 1.0
    if rel < -tol:
        regressions.append(f"top-level {TIMING_COL} {base[TIMING_COL]:.1f} "
                           f"-> {cur[TIMING_COL]:.1f} ({rel:+.0%})")
    if schema.get("min_gain") and min_gain > 0 \
            and cur[TIMING_COL] < base[TIMING_COL] * (1.0 + min_gain):
        regressions.append(
            f"top-level {TIMING_COL} {cur[TIMING_COL]:.1f} below min_gain "
            f"floor {base[TIMING_COL] * (1.0 + min_gain):.1f} "
            f"(committed {base[TIMING_COL]:.1f} x {1.0 + min_gain:.2f})")

# Acceptance floor: only assertable with real parallel hardware, and on
# the bench's best 4-worker configuration — the codec-bound rung; the
# fast rungs can legitimately be bound by the feeding thread.
if schema["speedup_floor"] and cur.get("hardware_concurrency", 0) >= 4:
    at4 = [r.get("speedup_vs_1", 0) for r in cur_rows.values()
           if r.get("workers") == 4]
    if at4 and max(at4) < 2.0:
        regressions.append(f"best speedup_vs_1 at 4 workers "
                           f"{max(at4)} < 2.0 floor")

for f_ in failures:
    print(f"MISMATCH {f_}", file=sys.stderr)
for r in regressions:
    print(f"REGRESSION {r}", file=sys.stderr)
if failures or regressions:
    print("verdict: REGRESSION", file=sys.stderr)
    sys.exit(1)
print("verdict: OK")
EOF
  then
    echo "!!! $bench: trajectory check failed (rerun with --update to" \
         "accept a new baseline)" >&2
    status=1
  fi
done

exit $status
