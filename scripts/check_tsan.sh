#!/usr/bin/env bash
# Build with -DSTRATO_SANITIZE=thread and run the concurrency-sensitive
# tests (thread pool, buffer pool, parallel pipeline, stream, channels,
# async transport + loopback soak) under ThreadSanitizer.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

# Static gate first: a lint violation or thread-safety error fails the run
# before any sanitizer build time is spent.
scripts/check_static.sh --lint-only

TESTS=(
  common_concurrency_test
  common_lockgraph_test
  compress_pipeline_test
  compress_decode_pipeline_test
  core_stream_test
  core_transport_test
  transport_soak_test
  dataflow_channel_test
  verify_oracle_test
  verify_chaos_test
  # ctest -L fleet slice: single-threaded by design, but the fleet engine
  # shares codecs/stats with concurrent layers — keep it sanitizer-clean.
  vsim_event_queue_test
  vsim_alloc_test
  vsim_fleet_test
)

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTRATO_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

# second_deadlock_stack aids debugging lock-order reports; halt_on_error
# keeps CI signal crisp.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

status=0
for t in "${TESTS[@]}"; do
  echo "== TSan: $t =="
  # common_lockgraph_test provokes AB/BA inversions on purpose (that is
  # what common::LockGraph must catch); TSan's own deadlock detector
  # flags the same inversions, so silence it for just that binary —
  # data-race detection stays on.
  opts="$TSAN_OPTIONS"
  if [ "$t" = "common_lockgraph_test" ]; then
    opts="$opts detect_deadlocks=0"
  fi
  # The loopback soak honors STRATO_TRANSPORT_*; scale it down under the
  # sanitizer's ~10x slowdown unless the caller pinned a size.
  if [ "$t" = "transport_soak_test" ]; then
    export STRATO_TRANSPORT_CONNS="${STRATO_TRANSPORT_CONNS:-8}"
    export STRATO_TRANSPORT_TOTAL_MB="${STRATO_TRANSPORT_TOTAL_MB:-16}"
  fi
  if ! TSAN_OPTIONS="$opts" "$BUILD_DIR/tests/$t"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "TSan suite clean."
else
  echo "TSan suite FAILED." >&2
fi
exit "$status"
