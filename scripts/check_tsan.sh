#!/usr/bin/env bash
# Build with -DSTRATO_SANITIZE=thread and run the concurrency-sensitive
# tests (thread pool, buffer pool, parallel pipeline, stream, channels)
# under ThreadSanitizer.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

TESTS=(
  common_concurrency_test
  compress_pipeline_test
  core_stream_test
  dataflow_channel_test
  verify_oracle_test
  verify_chaos_test
)

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTRATO_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

# second_deadlock_stack aids debugging lock-order reports; halt_on_error
# keeps CI signal crisp.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

status=0
for t in "${TESTS[@]}"; do
  echo "== TSan: $t =="
  if ! "$BUILD_DIR/tests/$t"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "TSan suite clean."
else
  echo "TSan suite FAILED." >&2
fi
exit "$status"
