#!/usr/bin/env bash
# Build with -DSTRATO_SANITIZE=address and run the memory-sensitive tests
# (framing + golden vectors, codec round-trips, mutation minifuzz, the
# differential oracle, fault injection) under AddressSanitizer — the
# "never out-of-bounds on hostile input" half of the verification story.
#
# A second build with -DSTRATO_SIMD=OFF then runs the unit + fuzz ctest
# labels once on the scalar fallback: the golden vectors pin the OFF
# build's wire to the default build's, and the sanitizer covers the
# scalar kernels the vectorized dispatch would otherwise shadow.
#
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

# Static gate first: a lint violation or thread-safety error fails the run
# before any sanitizer build time is spent.
scripts/check_static.sh --lint-only

TESTS=(
  # Pool poison-on-release first: the suite's death test proves a stale
  # pooled span aborts with use-after-poison under this build
  # (STRATO_POOL_POISON_DEFAULT_ON is set for every sanitizer flavour).
  common_pool_poison_test
  compress_framing_test
  compress_golden_test
  compress_pipeline_test
  compress_decode_pipeline_test
  verify_oracle_test
  verify_minifuzz_test
  verify_chaos_test
  property_test
  fault_injection_test
  core_transport_test
  transport_soak_test
  # ctest -L fleet slice: SoA column indexing under ASan guards against
  # any phase/id bookkeeping bug turning into out-of-bounds column reads.
  vsim_event_queue_test
  vsim_alloc_test
  vsim_fleet_test
)

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTRATO_SANITIZE=address
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

# detect_leaks catches pooled-buffer lifetime bugs; halt_on_error keeps CI
# signal crisp.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}"

status=0
for t in "${TESTS[@]}"; do
  echo "== ASan: $t =="
  # The loopback soak honors STRATO_TRANSPORT_*; scale it down under the
  # sanitizer's slowdown unless the caller pinned a size.
  if [ "$t" = "transport_soak_test" ]; then
    export STRATO_TRANSPORT_CONNS="${STRATO_TRANSPORT_CONNS:-8}"
    export STRATO_TRANSPORT_TOTAL_MB="${STRATO_TRANSPORT_TOTAL_MB:-16}"
  fi
  if ! "$BUILD_DIR/tests/$t"; then
    status=1
  fi
done

# Scalar-fallback pass: -DSTRATO_SIMD=OFF compiles the kernel layer out,
# and the unit + fuzz labels (golden vectors included) prove the scalar
# build emits and accepts the same wire as the default build.
OFF_DIR="${BUILD_DIR}-simd-off"
echo "== STRATO_SIMD=OFF: unit + fuzz labels =="
cmake -B "$OFF_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTRATO_SANITIZE=address \
  -DSTRATO_SIMD=OFF
cmake --build "$OFF_DIR" -j "$(nproc)"
if ! ctest --test-dir "$OFF_DIR" -L 'unit|fuzz' --output-on-failure \
    -j "$(nproc)"; then
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "ASan suite clean."
else
  echo "ASan suite FAILED." >&2
fi
exit "$status"
