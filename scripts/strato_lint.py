#!/usr/bin/env python3
"""strato-lint: project-rule linter for the strato tree.

Mechanical rules that -Wall cannot express, enforced over src/ and wired
into every presubmit script (check_static.sh runs this first):

  wallclock        src/vsim and src/verify are deterministic, virtual-time
                   worlds: std::chrono::system_clock, time(), rand()/srand()
                   and std::random_device are banned there (seeded RNGs and
                   SimTime only), so every simulation and fuzz run replays.
  raw-mutex        all locking goes through common::Mutex / MutexLock /
                   CondVar (common/mutex.h) so Clang -Wthread-safety and the
                   LockGraph deadlock detector see it; raw std::mutex,
                   std::lock_guard, std::unique_lock, std::scoped_lock,
                   std::condition_variable and friends are banned in src/
                   outside the wrapper and the detector it feeds.
  stdout           the library must not write to stdout (bench/example
                   output is parsed by scripts); std::cout / printf / puts
                   are banned in src/ outside common/logging.cc. stderr
                   (fprintf(stderr, ...), std::cerr in logging) is fine.
  nodiscard        status-returning APIs (bool try_*(), std::optional<T>
                   returners) must be [[nodiscard]] — dropping a failed
                   try_push is exactly how metrics silently lie.
  fleet-alloc      the fleet engine's hot loop (src/vsim/flow_table.*,
                   src/vsim/fleet.*, src/vsim/topology.*) is structs-of-
                   arrays by design: flows are indices into column
                   vectors, never heap objects. Literal `new`,
                   std::make_unique and std::make_shared are banned in
                   those files — growth happens only through the columns.
  copy             src/compress/framing.* is the zero-copy receive path:
                   payload bytes must flow as spans over pooled buffers,
                   so memcpy/memmove, std::copy and container
                   insert/assign are banned there. The sanctioned copies
                   (header prefix of an encoded frame, the partial-frame
                   tail on buffer wraparound) carry an explicit
                   `// strato-lint: allow(copy)` so every byte copy on
                   the wire path is a reviewable artifact.
  simd             src/common/simd.h is the single home of vector
                   intrinsics and bit-scan builtins: raw intrinsics
                   includes (<immintrin.h>, <arm_neon.h>, ...), _mm*/
                   vld1q/vst1q intrinsic calls and the __builtin_ctz/clz
                   family are banned everywhere else in src/ — portable
                   code calls simd::kernels() / simd::ctz32/ctz64, so one
                   file carries every per-ISA #if.
  socket           raw transport syscalls have exactly one home:
                   socket(2) creation and the epoll_* family are banned in
                   src/ outside src/core/{tcp,epoll_loop,transport}.* —
                   every other layer talks through TcpConnection/
                   TcpListener and EpollLoop, so fd lifetimes, SIGPIPE
                   discipline and event-loop invariants stay auditable in
                   one place.
  lifetime         flow-aware (brace/token-aware, per-function) borrow
                   check for the pooled zero-copy wire path: a span/view
                   derived from pooled storage (recv_span(), span_of(),
                   .span()/.mutable_span(), writable_tail()/unparsed(),
                   try_parse_frame(), next_block()) must not be (a) stored
                   into a member or global, (b) used after a
                   release()/commit()/retire/drop point in the same
                   function, or (c) captured by reference in a lambda.
                   Every sanctioned escape carries an explicit
                   `// strato-lint: allow(lifetime)` with a reason, so
                   each borrow that outlives a statement is a reviewable
                   artifact — the lint-time layer of the three-layer
                   lifetime discipline (STRATO_LIFETIME_BOUND at compile
                   time, BufferPool poisoning at run time; DESIGN.md
                   section 14).
  pragma-once      every header starts with #pragma once.
  using-namespace  `using namespace std` is banned in src/.
  include-path     project includes are "dir/file.h" from the src/ root:
                   no "../" traversal, no <bits/...> internals.

Escape hatch: append `// strato-lint: allow(rule)` (comma-separate several
rules) to the offending line, or put the comment alone on the preceding
line. Every allow is a reviewable artifact — grep for `strato-lint:` to
audit them.

Usage:
  strato_lint.py [--root DIR]    lint DIR/src (default: repo root)
  strato_lint.py --selftest      run against tests/lint_fixtures and
                                 verify every seeded violation is caught
Exit status: 0 clean, 1 violations (or selftest mismatch), 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------

# Files that ARE the sanctioned home of raw primitives.
RAW_MUTEX_ALLOWED = {
    "common/mutex.h",
    "common/lock_graph.h",
    "common/lock_graph.cc",
    "common/thread_annotations.h",
}

STDOUT_ALLOWED = {
    "common/logging.cc",
    "common/logging.h",
}

WALLCLOCK_DIRS = ("vsim/", "verify/")

# The zero-copy framing layer: every payload byte copy needs allow(copy).
COPY_BANNED_PREFIX = "compress/framing."

# The fleet hot loop: per-flow heap allocation is banned (SoA columns only).
FLEET_ALLOC_PREFIXES = ("vsim/flow_table.", "vsim/fleet.", "vsim/topology.",
                        "vsim/event_queue.")

# The one sanctioned home of intrinsics and bit-scan builtins.
SIMD_ALLOWED = {"common/simd.h"}

# The sanctioned home of raw transport syscalls (socket(2) + epoll_*):
# the TCP wrappers, the event loop, and the async transport they carry.
SOCKET_ALLOWED_PREFIXES = ("core/tcp.", "core/epoll_loop.",
                           "core/transport.")

RULES = {
    "wallclock": [
        (re.compile(r"system_clock"), "std::chrono::system_clock"),
        (re.compile(r"(?<![A-Za-z0-9_])s?rand\s*\("), "rand()/srand()"),
        (re.compile(r"(?<![A-Za-z0-9_])time\s*\("), "time()"),
        (re.compile(r"random_device"), "std::random_device"),
    ],
    "raw-mutex": [
        (re.compile(r"std::(timed_|recursive_|shared_)?mutex\b"), "raw std mutex type"),
        (re.compile(r"std::(lock_guard|unique_lock|scoped_lock)\b"), "raw std lock"),
        (re.compile(r"std::condition_variable(_any)?\b"), "raw std condition variable"),
        (re.compile(r"std::call_once\b|pthread_mutex"), "raw once/pthread locking"),
    ],
    "stdout": [
        (re.compile(r"std::cout\b"), "std::cout"),
        (re.compile(r"(?<![A-Za-z0-9_:])(?:std::)?printf\s*\("), "printf to stdout"),
        (re.compile(r"(?<![A-Za-z0-9_])puts\s*\("), "puts()"),
        (re.compile(r"fprintf\s*\(\s*stdout"), "fprintf(stdout, ...)"),
    ],
    "copy": [
        (re.compile(r"(?<![A-Za-z0-9_])(?:std::)?mem(?:cpy|move)\s*\("),
         "memcpy/memmove on the zero-copy framing path"),
        (re.compile(r"std::copy(_n|_backward)?\b"),
         "std::copy on the zero-copy framing path"),
        (re.compile(r"\.\s*(insert|assign)\s*\("),
         "container insert/assign (byte copy) on the framing path"),
    ],
    "fleet-alloc": [
        (re.compile(r"(?<![A-Za-z0-9_])new\b"),
         "heap allocation (new) in the fleet hot loop"),
        (re.compile(r"std::make_(unique|shared)\b"),
         "heap allocation (make_unique/make_shared) in the fleet hot loop"),
    ],
    "simd": [
        (re.compile(r"#\s*include\s+<(?:[a-z0-9]*mmintrin|immintrin|"
                    r"x86intrin|avx[a-z0-9]*intrin|arm_neon|arm_sve)\.h>"),
         "raw intrinsics include (the kernel layer lives in common/simd.h)"),
        (re.compile(r"(?<![A-Za-z0-9_])_mm(?:256|512)?_\w+\s*\("),
         "raw x86 intrinsic call (use the common/simd.h kernel table)"),
        (re.compile(r"(?<![A-Za-z0-9_])v(?:ld|st)1q?_\w+\s*\("),
         "raw NEON intrinsic call (use the common/simd.h kernel table)"),
        (re.compile(r"__builtin_c[tl]z(?:l|ll)?\b"),
         "__builtin_ctz/clz family (use simd::ctz32/ctz64)"),
    ],
    "socket": [
        (re.compile(r"(?<![A-Za-z0-9_])socket\s*\("),
         "raw socket(2) (use core::TcpConnection / core::TcpListener)"),
        (re.compile(r"(?<![A-Za-z0-9_])epoll_(?:create1?|ctl|p?wait)\s*\("),
         "raw epoll_* syscall (use core::EpollLoop)"),
    ],
    "using-namespace": [
        (re.compile(r"\busing\s+namespace\s+std\b"), "using namespace std"),
    ],
    "include-path": [
        (re.compile(r'#\s*include\s+"\.\./'), 'relative "../" include'),
        (re.compile(r"#\s*include\s+<bits/"), "<bits/...> internal header"),
    ],
}

# nodiscard is declaration-shaped rather than token-shaped.
NODISCARD_DECL = re.compile(
    r"^\s*(?:virtual\s+)?(?:bool\s+try_\w+|std::optional<[^;=]*>\s+\w+)\s*\("
)

# --------------------------------------------------------------------------
# lifetime rule: a flow pass over each function body (the other rules are
# line-shaped; this one needs statement order and scope).
# --------------------------------------------------------------------------

# Expressions that mint a borrow of pooled storage. Note BufferPool::
# acquire() is absent on purpose: it transfers ownership, the borrows
# start at the span accessors layered on top.
LIFETIME_SOURCE_RE = re.compile(
    r"\b(?:recv_span|try_parse_frame|writable_tail|unparsed|span_of)\s*\("
    r"|\.\s*(?:span|mutable_span)\s*\(\s*\)"
    r"|\bnext_block\s*\(\s*\)")

# Calls after which previously minted borrows are dead: the pool may have
# reclaimed (and, in poison mode, stamped) the storage behind them.
LIFETIME_RELEASE_RE = re.compile(
    r"\b(?:release|commit|retire_segments|drop_lease)\s*\(")

# Accessors on a pooled view that produce a VALUE (safe to store), not a
# borrow: copying a FrameHeader or a size out of a view is fine.
LIFETIME_VALUEISH_RE = re.compile(
    r"^\s*(?:\.|->)\s*(?:header|frame_size|size|empty|capacity|length)\b")

# Assignment to a local (possibly `var.field = ...`): group 1 the base
# variable, group 2 the right-hand side.
LIFETIME_ASSIGN_RE = re.compile(
    r"^\s*(?:[\w:<>,\s&*]+?\s)?([A-Za-z_]\w*)"
    r"(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)?\s*"
    r"(?<![=!<>+\-*/|&^])=(?![=])\s*(.+)$")

# Store into a member (project convention: trailing underscore, or an
# explicit this->) or a global (g_ prefix): plain assignment or a
# container insertion that keeps the value alive past the statement.
LIFETIME_MEMBER_STORE_RE = re.compile(
    r"^\s*(?:this\s*->\s*)?(?:[A-Za-z_]\w*_|g_\w+)\b"
    r"[\w.\[\]\s>-]*(?<![=!<>+\-*/|&^])=(?![=])\s*(.+)$")
LIFETIME_MEMBER_INSERT_RE = re.compile(
    r"\b(?:this\s*->\s*)?(?:[A-Za-z_]\w*_|g_\w+)\s*\.\s*"
    r"(?:push_back|push_front|emplace_back|emplace_front|insert|assign)"
    r"\s*\(([^;]*)")

# Lambda capture list (only when it is actually a lambda: followed by a
# parameter list or a body brace).
LIFETIME_LAMBDA_RE = re.compile(r"\[([^\]\[]*)\]\s*(?:\([^)]*\))?\s*\{")

# Function-header blacklist: a '(' after one of these is control flow or
# an operator, not a function definition.
NON_FUNCTION_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "alignas", "decltype", "static_assert", "new", "delete",
    "co_return", "co_await", "throw", "assert",
}


def strip_strings(line):
    """Blank out the contents of string and char literals so braces and
    identifiers inside them do not confuse the token scan. Quotes are
    kept; escapes are honoured."""
    out = []
    i = 0
    quote = None
    while i < len(line):
        ch = line[i]
        if quote is not None:
            if ch == "\\" and i + 1 < len(line):
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            else:
                out.append(" ")
        else:
            if ch in "\"'":
                quote = ch
            out.append(ch)
        i += 1
    return "".join(out)


def looks_like_function_header(header):
    """Heuristic: does the accumulated statement text before a `{` look
    like a function definition (vs control flow, a class, an initializer)?"""
    h = header.strip()
    if "(" not in h or not h or h.endswith(("=", ",")):
        return False
    m = re.search(r"([~A-Za-z_][\w:~]*)\s*\(", h)
    if m is None:
        return False
    name = m.group(1).split("::")[-1].lstrip("~")
    if name in NON_FUNCTION_KEYWORDS:
        return False
    # `Type obj{...}` has no '('; `enum class E : int {` has none either —
    # both already excluded. Reject aggregate types defined with bodies.
    if re.match(r"^(?:typedef\s+)?(?:struct|class|union|enum|namespace)\b",
                h):
        return False
    return True


def function_bodies(code_lines):
    """Token scan over comment/string-stripped lines. Returns a list of
    (first_line_idx, [body line indices]) — one entry per function-shaped
    brace block; nested blocks (loops, lambdas, local classes) stay inside
    their enclosing function's entry."""
    bodies = []
    depth = 0
    fn_depth = None  # brace depth at which the current function body opened
    current = None
    header = ""
    for idx, line in enumerate(code_lines):
        for ch in line:
            if ch == "{":
                if fn_depth is None and looks_like_function_header(header):
                    fn_depth = depth
                    current = (idx, [])
                depth += 1
                header = ""
            elif ch == "}":
                depth = max(0, depth - 1)
                if fn_depth is not None and depth == fn_depth:
                    bodies.append(current)
                    current = None
                    fn_depth = None
                header = ""
            elif ch == ";":
                header = ""
            else:
                header += ch
        header += " "
        if current is not None:
            current[1].append(idx)
    return bodies


def lifetime_borrowish_use(rhs, var):
    """True when `var` appears in `rhs` as a borrow (the var itself, its
    span fields, .data()/.subspan(...)), not merely as a copied-out value
    (.header, .size(), ...)."""
    for m in re.finditer(r"\b%s\b" % re.escape(var), rhs):
        rest = rhs[m.end():]
        if not LIFETIME_VALUEISH_RE.match(rest):
            return True
    return False


# Wrappers that forward a borrow instead of consuming it by value: span
# constructors, std::move/forward, std::optional of a view.
LIFETIME_SPAN_WRAPPER_RE = re.compile(
    r"(?:(?:common|std)::)?(?:Mutable)?ByteSpan$|(?:std::)?(?:move|forward)$"
    r"|(?:std::)?(?:optional|make_optional)$|subspan$|first$|last$")


def lifetime_rhs_mints_borrow(rhs, pooled_vars):
    """Does evaluating `rhs` produce a borrow of pooled storage? A source
    call nested inside some other function call is consumed by that call
    (`parse_header(seg.unparsed())` copies a header out by value) unless
    the outer call is a span wrapper that forwards the borrow."""
    pos = 0
    while True:
        m = LIFETIME_SOURCE_RE.search(rhs, pos)
        if m is None:
            break
        pos = m.end()
        # Position of the outermost unmatched '(' before the source call.
        stack = []
        for i, ch in enumerate(strip_strings(rhs[:m.start()])):
            if ch == "(":
                stack.append(i)
            elif ch == ")" and stack:
                stack.pop()
        if not stack:
            return True  # top-level source expression: a borrow
        outer = rhs[:stack[0]].rstrip()
        mm = re.search(r"([A-Za-z_][\w:]*)\s*$", outer)
        if mm is not None and LIFETIME_SPAN_WRAPPER_RE.search(mm.group(1)):
            return True
    return any(lifetime_borrowish_use(rhs, v) for v in pooled_vars)


def lint_lifetime(path_rel, raw_lines, code_lines, report):
    """The flow pass: track locals derived from pooled storage through
    each function body, flag member/global stores, uses across a
    release()/commit() point, and by-reference lambda captures."""
    stripped = [strip_strings(line) for line in code_lines]
    for _, body in function_bodies(stripped):
        pooled = {}          # var -> line idx where the borrow was minted
        release_at = None    # line idx of the first release point seen
        for idx in body:
            code = stripped[idx]
            if not code.strip():
                continue

            assign = LIFETIME_ASSIGN_RE.match(code)
            # Re-deriving a var from a fresh source revives it (loop
            # bodies: recv_span -> commit -> recv_span again).
            rederived = None
            if assign:
                var, rhs = assign.group(1), assign.group(2)
                rhs_pooled = lifetime_rhs_mints_borrow(rhs, pooled)
                if rhs_pooled:
                    if LIFETIME_MEMBER_STORE_RE.match(code):
                        report(idx, "pooled span stored into a member/"
                                    "global outlives its lease")
                    else:
                        pooled[var] = idx
                        rederived = var
                elif var in pooled and "." not in code.split("=")[0] \
                        and "->" not in code.split("=")[0]:
                    # Whole-object reassignment from a non-pooled value
                    # ends the borrow.
                    del pooled[var]

            # Container insertion into a member keeps the borrow alive
            # past the statement.
            mins = LIFETIME_MEMBER_INSERT_RE.search(code)
            if mins and lifetime_rhs_mints_borrow(mins.group(1), pooled):
                report(idx, "pooled span inserted into a member container "
                            "outlives its lease")

            # Use-after-release: any borrow minted before the release
            # point is dead past it.
            if release_at is not None:
                for var, minted in pooled.items():
                    if var == rederived or minted > release_at:
                        continue
                    if re.search(r"\b%s\b" % re.escape(var), code):
                        report(idx, f"pooled span '{var}' used after a "
                                    "release()/commit() point")

            # By-reference lambda capture: deferred execution may outlive
            # the lease.
            for lam in LIFETIME_LAMBDA_RE.finditer(code):
                caps = lam.group(1)
                if "&" not in caps:
                    continue
                explicit = re.findall(r"&\s*([A-Za-z_]\w*)", caps)
                hit = [v for v in explicit if v in pooled]
                default_ref = re.match(r"^\s*&\s*(?:,|$)", caps) is not None
                body_after = code[lam.end():]
                if hit or (default_ref and any(
                        re.search(r"\b%s\b" % re.escape(v), body_after)
                        for v in pooled)):
                    report(idx, "pooled span captured by reference in a "
                                "lambda (deferred use may outlive the "
                                "lease)")

            if LIFETIME_RELEASE_RE.search(code) and release_at is None:
                release_at = idx

ALLOW_RE = re.compile(r"//\s*strato-lint:\s*allow\(([^)]*)\)")

SOURCE_SUFFIXES = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comments(lines):
    """Blank out //- and /* */-comment text (allow() markers are extracted
    before this runs). Keeps line count and column positions stable enough
    for reporting. String literals are not parsed — the rules target
    identifiers that do not plausibly appear in strings."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            result.append(line[i])
            i += 1
        out.append("".join(result))
    return out


def allowed_rules(raw_lines, idx):
    """Rules suppressed for line idx (same line or the preceding line)."""
    rules = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lint_file(path: Path, rel: str):
    findings = []
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as ex:
        return [Finding(rel, 0, "io", f"unreadable: {ex}")]
    raw_lines = raw.splitlines()
    code_lines = strip_comments(raw_lines)

    is_header = path.suffix in {".h", ".hh", ".hpp"}
    in_wallclock_dir = any(rel.startswith(d) for d in WALLCLOCK_DIRS)

    # pragma-once: file-level; allow() anywhere in the first 5 lines.
    # Checked on comment-stripped lines so prose about the directive
    # doesn't satisfy it.
    has_pragma_once = any(
        line.strip().startswith("#pragma once") for line in code_lines)
    if is_header and not has_pragma_once:
        head_allows = set()
        for probe in range(min(5, len(raw_lines))):
            m = ALLOW_RE.search(raw_lines[probe])
            if m:
                head_allows.update(r.strip() for r in m.group(1).split(","))
        if "pragma-once" not in head_allows:
            findings.append(
                Finding(rel, 1, "pragma-once", "header lacks #pragma once"))

    for idx, code in enumerate(code_lines):
        if not code.strip():
            continue
        line_no = idx + 1
        allows = None  # computed lazily, most lines are clean

        def check(rule, patterns):
            nonlocal allows
            for pattern, what in patterns:
                if pattern.search(code):
                    if allows is None:
                        allows = allowed_rules(raw_lines, idx)
                    if rule not in allows:
                        findings.append(Finding(rel, line_no, rule, what))

        if in_wallclock_dir:
            check("wallclock", RULES["wallclock"])
        if rel not in RAW_MUTEX_ALLOWED:
            check("raw-mutex", RULES["raw-mutex"])
        if rel not in STDOUT_ALLOWED:
            check("stdout", RULES["stdout"])
        if rel.startswith(COPY_BANNED_PREFIX):
            check("copy", RULES["copy"])
        if rel.startswith(FLEET_ALLOC_PREFIXES):
            check("fleet-alloc", RULES["fleet-alloc"])
        if rel not in SIMD_ALLOWED:
            check("simd", RULES["simd"])
        if not rel.startswith(SOCKET_ALLOWED_PREFIXES):
            check("socket", RULES["socket"])
        check("using-namespace", RULES["using-namespace"])
        check("include-path", RULES["include-path"])

        if is_header and NODISCARD_DECL.search(code) \
                and "[[nodiscard]]" not in code:
            if allows is None:
                allows = allowed_rules(raw_lines, idx)
            if "nodiscard" not in allows:
                findings.append(Finding(
                    rel, line_no, "nodiscard",
                    "status-returning API lacks [[nodiscard]]"))

    # The lifetime rule runs as a separate per-function flow pass: it
    # needs statement order and function scope, not just line shape.
    def report_lifetime(idx, message):
        if "lifetime" not in allowed_rules(raw_lines, idx):
            findings.append(Finding(rel, idx + 1, "lifetime", message))

    lint_lifetime(rel, raw_lines, code_lines, report_lifetime)
    return findings


def lint_tree(root: Path):
    src = root / "src"
    if not src.is_dir():
        print(f"strato-lint: no src/ under {root}", file=sys.stderr)
        return None
    findings = []
    for path in sorted(src.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            findings.extend(lint_file(path, path.relative_to(src).as_posix()))
    return findings


# --------------------------------------------------------------------------
# Selftest: the fixture tree seeds one violation per (file, rule) below and
# one fully allow()-annotated file that must stay clean.
# --------------------------------------------------------------------------

EXPECTED_FIXTURE_FINDINGS = {
    ("vsim/bad_clock.cc", "wallclock"): 3,
    ("core/bad_mutex.cc", "raw-mutex"): 3,
    ("core/bad_print.cc", "stdout"): 2,
    ("core/bad_header.h", "pragma-once"): 1,
    ("core/bad_header.h", "nodiscard"): 2,
    ("core/bad_header.h", "using-namespace"): 1,
    ("core/bad_header.h", "include-path"): 1,
    ("compress/framing.cc", "copy"): 4,
    ("core/bad_socket.cc", "socket"): 4,
    ("compress/bad_simd.cc", "simd"): 5,
    ("vsim/fleet.cc", "fleet-alloc"): 3,
    ("compress/bad_lifetime.cc", "lifetime"): 6,
}


def selftest(fixture_root: Path) -> int:
    findings = lint_tree(fixture_root)
    if findings is None:
        return 2
    got = {}
    for f in findings:
        got[(f.path, f.rule)] = got.get((f.path, f.rule), 0) + 1

    status = 0
    for key, want in EXPECTED_FIXTURE_FINDINGS.items():
        have = got.pop(key, 0)
        if have != want:
            print(f"selftest: {key[0]} [{key[1]}]: expected {want} "
                  f"finding(s), got {have}", file=sys.stderr)
            status = 1
    for (path, rule), count in sorted(got.items()):
        print(f"selftest: unexpected {count} finding(s) {path} [{rule}]",
              file=sys.stderr)
        status = 1
    # The allow()-annotated twin must be clean — it exercises the escape
    # hatch for every rule.
    if status == 0:
        print(f"selftest OK: {len(findings)} seeded violations caught, "
              "allow() escapes honoured")
    return status


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root containing src/ (default: repo)")
    parser.add_argument("--selftest", action="store_true",
                        help="lint tests/lint_fixtures and verify the "
                             "seeded violations are all caught")
    args = parser.parse_args(argv)

    if args.selftest:
        fixtures = (Path(__file__).resolve().parent.parent
                    / "tests" / "lint_fixtures")
        return selftest(fixtures)

    findings = lint_tree(args.root.resolve())
    if findings is None:
        return 2
    for f in findings:
        print(f)
    if findings:
        print(f"strato-lint: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print("strato-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
