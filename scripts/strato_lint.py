#!/usr/bin/env python3
"""strato-lint: project-rule linter for the strato tree.

Mechanical rules that -Wall cannot express, enforced over src/ and wired
into every presubmit script (check_static.sh runs this first):

  wallclock        src/vsim and src/verify are deterministic, virtual-time
                   worlds: std::chrono::system_clock, time(), rand()/srand()
                   and std::random_device are banned there (seeded RNGs and
                   SimTime only), so every simulation and fuzz run replays.
  raw-mutex        all locking goes through common::Mutex / MutexLock /
                   CondVar (common/mutex.h) so Clang -Wthread-safety and the
                   LockGraph deadlock detector see it; raw std::mutex,
                   std::lock_guard, std::unique_lock, std::scoped_lock,
                   std::condition_variable and friends are banned in src/
                   outside the wrapper and the detector it feeds.
  stdout           the library must not write to stdout (bench/example
                   output is parsed by scripts); std::cout / printf / puts
                   are banned in src/ outside common/logging.cc. stderr
                   (fprintf(stderr, ...), std::cerr in logging) is fine.
  nodiscard        status-returning APIs (bool try_*(), std::optional<T>
                   returners) must be [[nodiscard]] — dropping a failed
                   try_push is exactly how metrics silently lie.
  fleet-alloc      the fleet engine's hot loop (src/vsim/flow_table.*,
                   src/vsim/fleet.*, src/vsim/topology.*) is structs-of-
                   arrays by design: flows are indices into column
                   vectors, never heap objects. Literal `new`,
                   std::make_unique and std::make_shared are banned in
                   those files — growth happens only through the columns.
  copy             src/compress/framing.* is the zero-copy receive path:
                   payload bytes must flow as spans over pooled buffers,
                   so memcpy/memmove, std::copy and container
                   insert/assign are banned there. The sanctioned copies
                   (header prefix of an encoded frame, the partial-frame
                   tail on buffer wraparound) carry an explicit
                   `// strato-lint: allow(copy)` so every byte copy on
                   the wire path is a reviewable artifact.
  simd             src/common/simd.h is the single home of vector
                   intrinsics and bit-scan builtins: raw intrinsics
                   includes (<immintrin.h>, <arm_neon.h>, ...), _mm*/
                   vld1q/vst1q intrinsic calls and the __builtin_ctz/clz
                   family are banned everywhere else in src/ — portable
                   code calls simd::kernels() / simd::ctz32/ctz64, so one
                   file carries every per-ISA #if.
  socket           raw transport syscalls have exactly one home:
                   socket(2) creation and the epoll_* family are banned in
                   src/ outside src/core/{tcp,epoll_loop,transport}.* —
                   every other layer talks through TcpConnection/
                   TcpListener and EpollLoop, so fd lifetimes, SIGPIPE
                   discipline and event-loop invariants stay auditable in
                   one place.
  pragma-once      every header starts with #pragma once.
  using-namespace  `using namespace std` is banned in src/.
  include-path     project includes are "dir/file.h" from the src/ root:
                   no "../" traversal, no <bits/...> internals.

Escape hatch: append `// strato-lint: allow(rule)` (comma-separate several
rules) to the offending line, or put the comment alone on the preceding
line. Every allow is a reviewable artifact — grep for `strato-lint:` to
audit them.

Usage:
  strato_lint.py [--root DIR]    lint DIR/src (default: repo root)
  strato_lint.py --selftest      run against tests/lint_fixtures and
                                 verify every seeded violation is caught
Exit status: 0 clean, 1 violations (or selftest mismatch), 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------

# Files that ARE the sanctioned home of raw primitives.
RAW_MUTEX_ALLOWED = {
    "common/mutex.h",
    "common/lock_graph.h",
    "common/lock_graph.cc",
    "common/thread_annotations.h",
}

STDOUT_ALLOWED = {
    "common/logging.cc",
    "common/logging.h",
}

WALLCLOCK_DIRS = ("vsim/", "verify/")

# The zero-copy framing layer: every payload byte copy needs allow(copy).
COPY_BANNED_PREFIX = "compress/framing."

# The fleet hot loop: per-flow heap allocation is banned (SoA columns only).
FLEET_ALLOC_PREFIXES = ("vsim/flow_table.", "vsim/fleet.", "vsim/topology.")

# The one sanctioned home of intrinsics and bit-scan builtins.
SIMD_ALLOWED = {"common/simd.h"}

# The sanctioned home of raw transport syscalls (socket(2) + epoll_*):
# the TCP wrappers, the event loop, and the async transport they carry.
SOCKET_ALLOWED_PREFIXES = ("core/tcp.", "core/epoll_loop.",
                           "core/transport.")

RULES = {
    "wallclock": [
        (re.compile(r"system_clock"), "std::chrono::system_clock"),
        (re.compile(r"(?<![A-Za-z0-9_])s?rand\s*\("), "rand()/srand()"),
        (re.compile(r"(?<![A-Za-z0-9_])time\s*\("), "time()"),
        (re.compile(r"random_device"), "std::random_device"),
    ],
    "raw-mutex": [
        (re.compile(r"std::(timed_|recursive_|shared_)?mutex\b"), "raw std mutex type"),
        (re.compile(r"std::(lock_guard|unique_lock|scoped_lock)\b"), "raw std lock"),
        (re.compile(r"std::condition_variable(_any)?\b"), "raw std condition variable"),
        (re.compile(r"std::call_once\b|pthread_mutex"), "raw once/pthread locking"),
    ],
    "stdout": [
        (re.compile(r"std::cout\b"), "std::cout"),
        (re.compile(r"(?<![A-Za-z0-9_:])(?:std::)?printf\s*\("), "printf to stdout"),
        (re.compile(r"(?<![A-Za-z0-9_])puts\s*\("), "puts()"),
        (re.compile(r"fprintf\s*\(\s*stdout"), "fprintf(stdout, ...)"),
    ],
    "copy": [
        (re.compile(r"(?<![A-Za-z0-9_])(?:std::)?mem(?:cpy|move)\s*\("),
         "memcpy/memmove on the zero-copy framing path"),
        (re.compile(r"std::copy(_n|_backward)?\b"),
         "std::copy on the zero-copy framing path"),
        (re.compile(r"\.\s*(insert|assign)\s*\("),
         "container insert/assign (byte copy) on the framing path"),
    ],
    "fleet-alloc": [
        (re.compile(r"(?<![A-Za-z0-9_])new\b"),
         "heap allocation (new) in the fleet hot loop"),
        (re.compile(r"std::make_(unique|shared)\b"),
         "heap allocation (make_unique/make_shared) in the fleet hot loop"),
    ],
    "simd": [
        (re.compile(r"#\s*include\s+<(?:[a-z0-9]*mmintrin|immintrin|"
                    r"x86intrin|avx[a-z0-9]*intrin|arm_neon|arm_sve)\.h>"),
         "raw intrinsics include (the kernel layer lives in common/simd.h)"),
        (re.compile(r"(?<![A-Za-z0-9_])_mm(?:256|512)?_\w+\s*\("),
         "raw x86 intrinsic call (use the common/simd.h kernel table)"),
        (re.compile(r"(?<![A-Za-z0-9_])v(?:ld|st)1q?_\w+\s*\("),
         "raw NEON intrinsic call (use the common/simd.h kernel table)"),
        (re.compile(r"__builtin_c[tl]z(?:l|ll)?\b"),
         "__builtin_ctz/clz family (use simd::ctz32/ctz64)"),
    ],
    "socket": [
        (re.compile(r"(?<![A-Za-z0-9_])socket\s*\("),
         "raw socket(2) (use core::TcpConnection / core::TcpListener)"),
        (re.compile(r"(?<![A-Za-z0-9_])epoll_(?:create1?|ctl|p?wait)\s*\("),
         "raw epoll_* syscall (use core::EpollLoop)"),
    ],
    "using-namespace": [
        (re.compile(r"\busing\s+namespace\s+std\b"), "using namespace std"),
    ],
    "include-path": [
        (re.compile(r'#\s*include\s+"\.\./'), 'relative "../" include'),
        (re.compile(r"#\s*include\s+<bits/"), "<bits/...> internal header"),
    ],
}

# nodiscard is declaration-shaped rather than token-shaped.
NODISCARD_DECL = re.compile(
    r"^\s*(?:virtual\s+)?(?:bool\s+try_\w+|std::optional<[^;=]*>\s+\w+)\s*\("
)

ALLOW_RE = re.compile(r"//\s*strato-lint:\s*allow\(([^)]*)\)")

SOURCE_SUFFIXES = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comments(lines):
    """Blank out //- and /* */-comment text (allow() markers are extracted
    before this runs). Keeps line count and column positions stable enough
    for reporting. String literals are not parsed — the rules target
    identifiers that do not plausibly appear in strings."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            result.append(line[i])
            i += 1
        out.append("".join(result))
    return out


def allowed_rules(raw_lines, idx):
    """Rules suppressed for line idx (same line or the preceding line)."""
    rules = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lint_file(path: Path, rel: str):
    findings = []
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as ex:
        return [Finding(rel, 0, "io", f"unreadable: {ex}")]
    raw_lines = raw.splitlines()
    code_lines = strip_comments(raw_lines)

    is_header = path.suffix in {".h", ".hh", ".hpp"}
    in_wallclock_dir = any(rel.startswith(d) for d in WALLCLOCK_DIRS)

    # pragma-once: file-level; allow() anywhere in the first 5 lines.
    # Checked on comment-stripped lines so prose about the directive
    # doesn't satisfy it.
    has_pragma_once = any(
        line.strip().startswith("#pragma once") for line in code_lines)
    if is_header and not has_pragma_once:
        head_allows = set()
        for probe in range(min(5, len(raw_lines))):
            m = ALLOW_RE.search(raw_lines[probe])
            if m:
                head_allows.update(r.strip() for r in m.group(1).split(","))
        if "pragma-once" not in head_allows:
            findings.append(
                Finding(rel, 1, "pragma-once", "header lacks #pragma once"))

    for idx, code in enumerate(code_lines):
        if not code.strip():
            continue
        line_no = idx + 1
        allows = None  # computed lazily, most lines are clean

        def check(rule, patterns):
            nonlocal allows
            for pattern, what in patterns:
                if pattern.search(code):
                    if allows is None:
                        allows = allowed_rules(raw_lines, idx)
                    if rule not in allows:
                        findings.append(Finding(rel, line_no, rule, what))

        if in_wallclock_dir:
            check("wallclock", RULES["wallclock"])
        if rel not in RAW_MUTEX_ALLOWED:
            check("raw-mutex", RULES["raw-mutex"])
        if rel not in STDOUT_ALLOWED:
            check("stdout", RULES["stdout"])
        if rel.startswith(COPY_BANNED_PREFIX):
            check("copy", RULES["copy"])
        if rel.startswith(FLEET_ALLOC_PREFIXES):
            check("fleet-alloc", RULES["fleet-alloc"])
        if rel not in SIMD_ALLOWED:
            check("simd", RULES["simd"])
        if not rel.startswith(SOCKET_ALLOWED_PREFIXES):
            check("socket", RULES["socket"])
        check("using-namespace", RULES["using-namespace"])
        check("include-path", RULES["include-path"])

        if is_header and NODISCARD_DECL.search(code) \
                and "[[nodiscard]]" not in code:
            if allows is None:
                allows = allowed_rules(raw_lines, idx)
            if "nodiscard" not in allows:
                findings.append(Finding(
                    rel, line_no, "nodiscard",
                    "status-returning API lacks [[nodiscard]]"))
    return findings


def lint_tree(root: Path):
    src = root / "src"
    if not src.is_dir():
        print(f"strato-lint: no src/ under {root}", file=sys.stderr)
        return None
    findings = []
    for path in sorted(src.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            findings.extend(lint_file(path, path.relative_to(src).as_posix()))
    return findings


# --------------------------------------------------------------------------
# Selftest: the fixture tree seeds one violation per (file, rule) below and
# one fully allow()-annotated file that must stay clean.
# --------------------------------------------------------------------------

EXPECTED_FIXTURE_FINDINGS = {
    ("vsim/bad_clock.cc", "wallclock"): 3,
    ("core/bad_mutex.cc", "raw-mutex"): 3,
    ("core/bad_print.cc", "stdout"): 2,
    ("core/bad_header.h", "pragma-once"): 1,
    ("core/bad_header.h", "nodiscard"): 2,
    ("core/bad_header.h", "using-namespace"): 1,
    ("core/bad_header.h", "include-path"): 1,
    ("compress/framing.cc", "copy"): 4,
    ("core/bad_socket.cc", "socket"): 4,
    ("compress/bad_simd.cc", "simd"): 5,
    ("vsim/fleet.cc", "fleet-alloc"): 3,
}


def selftest(fixture_root: Path) -> int:
    findings = lint_tree(fixture_root)
    if findings is None:
        return 2
    got = {}
    for f in findings:
        got[(f.path, f.rule)] = got.get((f.path, f.rule), 0) + 1

    status = 0
    for key, want in EXPECTED_FIXTURE_FINDINGS.items():
        have = got.pop(key, 0)
        if have != want:
            print(f"selftest: {key[0]} [{key[1]}]: expected {want} "
                  f"finding(s), got {have}", file=sys.stderr)
            status = 1
    for (path, rule), count in sorted(got.items()):
        print(f"selftest: unexpected {count} finding(s) {path} [{rule}]",
              file=sys.stderr)
        status = 1
    # The allow()-annotated twin must be clean — it exercises the escape
    # hatch for every rule.
    if status == 0:
        print(f"selftest OK: {len(findings)} seeded violations caught, "
              "allow() escapes honoured")
    return status


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root containing src/ (default: repo)")
    parser.add_argument("--selftest", action="store_true",
                        help="lint tests/lint_fixtures and verify the "
                             "seeded violations are all caught")
    args = parser.parse_args(argv)

    if args.selftest:
        fixtures = (Path(__file__).resolve().parent.parent
                    / "tests" / "lint_fixtures")
        return selftest(fixtures)

    findings = lint_tree(args.root.resolve())
    if findings is None:
        return 2
    for f in findings:
        print(f)
    if findings:
        print(f"strato-lint: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print("strato-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
