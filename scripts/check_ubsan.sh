#!/usr/bin/env bash
# Build with -DSTRATO_SANITIZE=undefined and run the unit + fuzz ctest
# labels under UndefinedBehaviorSanitizer. The CMake flavour compiles with
# -fno-sanitize-recover=undefined, so any UB report (misaligned load,
# signed overflow in a codec kernel, invalid shift in a bit reader, ...)
# is a test failure, not a log line.
#
# Complements check_asan.sh (spatial/temporal memory errors, pool
# poisoning) and check_tsan.sh (data races): the three sanitizer gates
# share the same lint-first structure.
#
# Usage: scripts/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ubsan}"

# Static gate first: a lint violation fails the run before any sanitizer
# build time is spent.
scripts/check_static.sh --lint-only

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTRATO_SANITIZE=undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# print_stacktrace turns the one-line runtime report into an actionable
# frame list; halt_on_error mirrors the other sanitizer gates.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=1}"

status=0
if ! ctest --test-dir "$BUILD_DIR" -L 'unit|fuzz' --output-on-failure \
    -j "$(nproc)"; then
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "UBSan suite clean."
else
  echo "UBSan suite FAILED." >&2
fi
exit "$status"
