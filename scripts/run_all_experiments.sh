#!/usr/bin/env bash
# Regenerate every table and figure of the paper plus the ablations,
# extensions and model validation, teeing each bench's output into
# results/. Usage: scripts/run_all_experiments.sh [build-dir] [results-dir]
set -u
SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
BUILD="${1:-build}"
OUT="${2:-results}"

# Fail fast on the static gate: numbers from a tree that violates the
# project rules (wall-clock in vsim, unguarded shared state) are not
# reproducible numbers.
if ! "$SCRIPT_DIR/check_static.sh" --lint-only; then
  echo "static gate failed — fix lint violations before running experiments" >&2
  exit 1
fi

mkdir -p "$OUT"

if [ ! -d "$BUILD/bench" ]; then
  echo "build first: cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

status=0
for b in "$BUILD"/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "=== $name ==="
  if ! "$b" | tee "$OUT/$name.txt"; then
    echo "!!! $name failed" >&2
    status=1
  fi
  echo
done

# Benchmark trajectory gate: re-run the scaling benches with file output
# and compare against the committed BENCH_*.json baselines (tolerance
# band on throughput, exact match on the deterministic fields).
if ! "$SCRIPT_DIR/check_bench.sh" "$BUILD"; then
  echo "!!! bench trajectory check failed" >&2
  status=1
fi

# UBSan leg: numbers produced by a build with latent undefined behaviour
# are not trustworthy numbers. Opt out with STRATO_SKIP_UBSAN=1 (e.g.
# when iterating on bench output only).
if [ "${STRATO_SKIP_UBSAN:-0}" != "1" ]; then
  if ! "$SCRIPT_DIR/check_ubsan.sh"; then
    echo "!!! UBSan gate failed" >&2
    status=1
  fi
fi

# Single-core kernel trajectory as a standalone JSON artifact (the same
# bench also runs inside the glob above and the check_bench.sh gate; this
# copy is the one plots and PR descriptions reference).
"$BUILD"/bench/bench_codec_micro "$OUT/BENCH_codec.json" >/dev/null

# End-to-end loopback transport trajectory, same standalone-artifact form.
"$BUILD"/bench/bench_transport_loopback "$OUT/BENCH_transport.json" >/dev/null

# Timeline CSVs for external plotting.
"$BUILD"/bench/bench_fig4_timeline_high --csv "$OUT/fig4_timeline.csv" >/dev/null
"$BUILD"/bench/bench_fig5_timeline_low  --csv "$OUT/fig5_timeline.csv" >/dev/null
"$BUILD"/bench/bench_fig6_switch        --csv "$OUT/fig6_timeline.csv" >/dev/null
echo "outputs in $OUT/"
exit $status
