#!/usr/bin/env bash
# Static gate: strato-lint (project rules) + lint selftest, then — when a
# clang++ is on PATH — a full configure/build with -Wthread-safety
# promoted to an error so every STRATO_GUARDED_BY / STRATO_REQUIRES
# annotation in src/ is machine-checked. Under GCC-only containers the
# thread-safety leg is skipped with a note; the lint gate always runs.
#
# Usage: scripts/check_static.sh [--lint-only] [build-dir]
#   --lint-only   skip the Clang thread-safety build (fast presubmit gate)
#   build-dir     Clang build tree (default: build-threadsafety)
set -euo pipefail

cd "$(dirname "$0")/.."

LINT_ONLY=0
if [ "${1:-}" = "--lint-only" ]; then
  LINT_ONLY=1
  shift
fi
BUILD_DIR="${1:-build-threadsafety}"

PYTHON="${PYTHON:-python3}"
if ! command -v "$PYTHON" >/dev/null 2>&1; then
  echo "check_static: $PYTHON not found — cannot run strato-lint" >&2
  exit 1
fi

echo "== strato-lint: selftest =="
"$PYTHON" scripts/strato_lint.py --selftest

echo "== strato-lint: src/ =="
"$PYTHON" scripts/strato_lint.py

if [ "$LINT_ONLY" -eq 1 ]; then
  echo "check_static: lint gate clean (--lint-only, thread-safety build skipped)."
  exit 0
fi

CLANGXX="${CLANGXX:-clang++}"
if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "check_static: $CLANGXX not found — skipping -Wthread-safety build" \
       "(annotations compile to nothing under GCC; lint gate is still binding)."
  exit 0
fi

echo "== clang -Wthread-safety -Werror build =="
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_CXX_COMPILER="$CLANGXX" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTRATO_THREAD_SAFETY=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
echo "check_static: clean (lint + thread-safety)."
