#!/usr/bin/env bash
# Static gate: strato-lint (project rules, including the `lifetime`
# borrow-flow pass) + lint selftest, then — when a clang++ is on PATH — a
# full configure/build with -Wthread-safety promoted to an error AND the
# STRATO_LIFETIME_SAFETY dangling-borrow diagnostics promoted to errors,
# so every STRATO_GUARDED_BY / STRATO_REQUIRES / STRATO_LIFETIME_BOUND
# annotation in src/ is machine-checked. A clang-tidy pass (root
# .clang-tidy: bugprone-*, clang-analyzer-*, concurrency-*,
# performance-*) rides along via check_tidy.sh. Under GCC-only containers
# the Clang legs are skipped with a note; the lint gate always runs.
#
# Usage: scripts/check_static.sh [--lint-only] [build-dir]
#   --lint-only   skip the Clang builds (fast presubmit gate)
#   build-dir     Clang build tree (default: build-threadsafety)
set -euo pipefail

cd "$(dirname "$0")/.."

LINT_ONLY=0
if [ "${1:-}" = "--lint-only" ]; then
  LINT_ONLY=1
  shift
fi
BUILD_DIR="${1:-build-threadsafety}"

PYTHON="${PYTHON:-python3}"
if ! command -v "$PYTHON" >/dev/null 2>&1; then
  echo "check_static: $PYTHON not found — cannot run strato-lint" >&2
  exit 1
fi

echo "== strato-lint: selftest =="
"$PYTHON" scripts/strato_lint.py --selftest

echo "== strato-lint: src/ =="
"$PYTHON" scripts/strato_lint.py

if [ "$LINT_ONLY" -eq 1 ]; then
  echo "check_static: lint gate clean (--lint-only, Clang builds skipped)."
  exit 0
fi

CLANGXX="${CLANGXX:-clang++}"
if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "check_static: $CLANGXX not found — skipping -Wthread-safety /" \
       "lifetimebound build (both annotation families compile to nothing" \
       "under GCC; the lint gate is still binding)."
  # clang-tidy may still exist without a clang++ driver; it no-ops with a
  # note when absent.
  scripts/check_tidy.sh
  exit 0
fi

echo "== clang -Wthread-safety + lifetimebound -Werror build =="
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_CXX_COMPILER="$CLANGXX" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTRATO_THREAD_SAFETY=ON \
  -DSTRATO_LIFETIME_SAFETY=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# clang-tidy over the freshly exported compilation database (no-op with a
# note when clang-tidy is not installed).
scripts/check_tidy.sh "$BUILD_DIR"

echo "check_static: clean (lint + thread-safety + lifetime)."
