// Ablation: the dead-band parameter alpha.
//
// The paper: "During our experiments we found 0.2 to be a reasonable value
// for alpha. Small values ... detect the best compression level even if
// the performance gains ... are rather small [but] make the decision
// algorithm more prone to incorrect decisions" under throughput
// fluctuations. This bench sweeps alpha and reports completion time plus
// probe/revert counts on the HIGH (clear winner exists) and LOW (levels
// nearly tie, fluctuating link) workloads.
#include <cstdio>

#include "expkit/policies.h"
#include "expkit/tables.h"
#include "vsim/transfer.h"

using namespace strato;

namespace {

struct Outcome {
  double completion_s = 0.0;
  int probes = 0;
  int reverts = 0;
};

Outcome run(vsim::VirtTech tech, corpus::Compressibility data, int bg,
            double alpha) {
  vsim::TransferConfig cfg;
  cfg.tech = tech;
  cfg.data = data;
  cfg.bg_flows = bg;
  cfg.total_bytes = 20'000'000'000ULL;
  cfg.seed = 77;
  vsim::TransferExperiment exp(cfg);
  auto policy = expkit::make_policy("DYNAMIC", exp, alpha);
  auto* adaptive = dynamic_cast<core::AdaptivePolicy*>(policy.get());
  Outcome out;
  adaptive->set_trace([&](common::SimTime, double, const core::Decision& d) {
    if (d.probed) ++out.probes;
    if (d.reverted) ++out.reverts;
  });
  out.completion_s = exp.run(*policy).completion_s;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: alpha sweep (20 GB per cell, t = 2 s).\n"
      "Probes = optimistic level switches; reverts = undone decisions.\n\n");
  const double alphas[] = {0.05, 0.1, 0.2, 0.3, 0.4};

  for (const auto& [tech, data, bg] :
       {std::tuple{vsim::VirtTech::kKvmPara, corpus::Compressibility::kHigh,
                   0},
        std::tuple{vsim::VirtTech::kKvmPara, corpus::Compressibility::kLow,
                   2},
        std::tuple{vsim::VirtTech::kEc2, corpus::Compressibility::kLow, 0}}) {
    std::printf("--- %s, %s data, %d background flows ---\n",
                vsim::to_string(tech), corpus::to_string(data), bg);
    expkit::TablePrinter table;
    table.header({"alpha", "completion [s]", "probes", "reverts"});
    for (const double a : alphas) {
      const auto o = run(tech, data, bg, a);
      table.row({expkit::fmt(a, 2), expkit::fmt_seconds(o.completion_s),
                 std::to_string(o.probes), std::to_string(o.reverts)});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Shape (paper Section III/IV): on a calm local cloud a small alpha\n"
      "discriminates even the near-tied levels of the LOW case and locks\n"
      "in; on the heavily fluctuating EC2 link a small alpha misreads\n"
      "noise as change (reverts/probes rise and completion suffers).\n"
      "alpha = 0.2 is the paper's compromise across both regimes.\n");
  return 0;
}
