// Model cross-validation: fluid pipeline vs packet-level DES.
//
// All paper-scale benches run on the fluid three-stage recurrence
// (vsim/transfer.h). This bench checks that abstraction against an
// independently implemented packet-granularity simulation (MTU packets,
// weighted deficit round-robin at the NIC, explicit background flows,
// event queue) across the Table II grid, reporting the deviation of every
// cell. Small deviations mean the fluid numbers elsewhere in
// EXPERIMENTS.md are not artifacts of the fluid abstraction.
#include <cstdio>

#include "expkit/policies.h"
#include "expkit/tables.h"
#include "vsim/packet_sim.h"
#include "vsim/transfer.h"

using namespace strato;

int main() {
  constexpr std::uint64_t kBytes = 2'000'000'000ULL;  // per cell
  std::printf(
      "Model validation: fluid pipeline vs packet-level DES (2 GB per "
      "cell).\n\n");
  expkit::TablePrinter table;
  table.header({"data", "bg", "policy", "fluid [s]", "packet [s]",
                "deviation", "packets"});
  double worst = 0.0;
  for (const auto data :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    for (const int bg : {0, 2}) {
      for (const char* policy_name : {"NO", "LIGHT", "DYNAMIC"}) {
        vsim::TransferConfig fluid_cfg;
        fluid_cfg.data = data;
        fluid_cfg.bg_flows = bg;
        fluid_cfg.total_bytes = kBytes;
        fluid_cfg.seed = 99;
        vsim::TransferExperiment fluid(fluid_cfg);
        const auto fp = expkit::make_policy(policy_name, fluid);
        const double fluid_s = fluid.run(*fp).completion_s;

        vsim::PacketSimConfig pkt_cfg;
        pkt_cfg.data = data;
        pkt_cfg.bg_flows = bg;
        pkt_cfg.total_bytes = kBytes;
        pkt_cfg.seed = 99;
        vsim::TransferExperiment ctx(fluid_cfg);
        const auto pp = expkit::make_policy(policy_name, ctx);
        const auto pkt = vsim::run_packet_transfer(pkt_cfg, *pp);

        const double dev = (pkt.completion_s - fluid_s) / fluid_s;
        worst = std::max(worst, std::abs(dev));
        table.row({corpus::to_string(data), std::to_string(bg), policy_name,
                   expkit::fmt_seconds(fluid_s),
                   expkit::fmt_seconds(pkt.completion_s),
                   expkit::fmt(dev * 100.0, 3) + "%",
                   std::to_string(pkt.fg_packets + pkt.bg_packets)});
      }
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("worst absolute deviation: %.3f%%\n", worst * 100.0);
  return 0;
}
