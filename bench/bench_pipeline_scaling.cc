// Parallel-pipeline scaling: compression throughput vs worker count for the
// paper's three corpus compressibilities, plus a serial-vs-parallel wire
// identity check. Emits one JSON object on stdout and mirrors it to the
// file named by argv[1] (the committed BENCH_pipeline.json trajectory —
// see scripts/check_bench.sh).
//
// Acceptance target: >= 2.5x at 4 workers vs 1 on the low-entropy (HIGH
// compressibility) corpus — only demonstrable on a machine with >= 4
// hardware threads; `hardware_concurrency` is reported so harnesses can
// gate on it. `corpus_seed`, `blocks` and `ratio` are deterministic and
// must reproduce exactly between runs; the timing fields carry a
// tolerance band.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/bytes.h"
#include "compress/framing.h"
#include "compress/pipeline.h"
#include "compress/registry.h"
#include "corpus/generator.h"

namespace {

using strato::bench::appendf;
using strato::common::Bytes;
using strato::compress::CodecRegistry;
using strato::compress::ParallelBlockPipeline;
using strato::compress::PipelineConfig;

constexpr std::size_t kBlockSize = 128 * 1024;
constexpr int kLevel = 2;  // MEDIUM: enough codec work for scaling to show
constexpr std::uint64_t kCorpusSeed = 1234;

std::vector<Bytes> make_corpus(strato::corpus::Compressibility c,
                               std::size_t total_bytes) {
  auto gen = strato::corpus::make_generator(c, kCorpusSeed);
  std::vector<Bytes> blocks;
  for (std::size_t done = 0; done < total_bytes; done += kBlockSize) {
    blocks.push_back(strato::corpus::take(*gen, kBlockSize));
  }
  return blocks;
}

struct RunResult {
  double secs = -1.0;
  std::size_t wire_bytes = 0;
};

RunResult run_once(const CodecRegistry& registry,
                   const std::vector<Bytes>& blocks, std::size_t workers) {
  RunResult r;
  ParallelBlockPipeline pipeline(
      registry, PipelineConfig{workers, /*depth=*/0},
      [&](strato::common::ByteSpan frame, std::size_t, int) {
        r.wire_bytes += frame.size();
      });
  const auto start = std::chrono::steady_clock::now();
  for (const auto& b : blocks) pipeline.submit(kLevel, b);
  pipeline.flush();
  const auto end = std::chrono::steady_clock::now();
  if (r.wire_bytes == 0) return r;  // keep the sink observable
  r.secs = std::chrono::duration<double>(end - start).count();
  return r;
}

/// Parallel frames must be byte-identical to the serial encoder's at every
/// codec level; any mismatch is a correctness bug, not a perf detail.
bool identity_check(const CodecRegistry& registry) {
  auto gen = strato::corpus::make_generator(
      strato::corpus::Compressibility::kModerate, 99);
  std::vector<Bytes> blocks;
  for (int i = 0; i < 6; ++i) {
    blocks.push_back(strato::corpus::take(*gen, 32 * 1024));
  }
  for (int level = 1; level < static_cast<int>(registry.level_count());
       ++level) {
    std::vector<Bytes> serial;
    for (const auto& b : blocks) {
      serial.push_back(strato::compress::encode_block(
          *registry.level(static_cast<std::size_t>(level)).codec,
          static_cast<std::uint8_t>(level), b));
    }
    std::vector<Bytes> parallel;
    ParallelBlockPipeline pipeline(
        registry, PipelineConfig{4, 0},
        [&](strato::common::ByteSpan frame, std::size_t, int) {
          parallel.emplace_back(frame.begin(), frame.end());
        });
    for (const auto& b : blocks) pipeline.submit(level, b);
    pipeline.flush();
    if (parallel != serial) {
      std::fprintf(stderr, "identity FAILED at level %d\n", level);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CodecRegistry& registry = CodecRegistry::standard();
  if (!identity_check(registry)) return 1;

  const std::size_t total = 16ull * 1024 * 1024;
  const strato::corpus::Compressibility corpora[] = {
      strato::corpus::Compressibility::kHigh,
      strato::corpus::Compressibility::kModerate,
      strato::corpus::Compressibility::kLow};
  const std::size_t worker_counts[] = {1, 2, 4, 8};

  std::string json;
  appendf(json, "{\n  \"bench\": \"pipeline_scaling\",\n");
  appendf(json, "  \"block_size\": %zu,\n  \"level\": %d,\n", kBlockSize,
          kLevel);
  appendf(json, "  \"corpus_seed\": %llu,\n",
          static_cast<unsigned long long>(kCorpusSeed));
  appendf(json, "  \"total_mib\": %.0f,\n",
          static_cast<double>(total) / (1024.0 * 1024.0));
  appendf(json, "  \"hardware_concurrency\": %u,\n",
          std::thread::hardware_concurrency());
  appendf(json, "  \"identity_check\": \"pass\",\n");
  appendf(json, "  \"results\": [\n");

  bool first = true;
  for (const auto c : corpora) {
    const auto blocks = make_corpus(c, total);
    const double raw = static_cast<double>(blocks.size() * kBlockSize);
    const double mib = raw / (1024.0 * 1024.0);
    double base = -1.0;
    for (const std::size_t workers : worker_counts) {
      run_once(registry, blocks, workers);  // warm-up (pools, page faults)
      const RunResult r = run_once(registry, blocks, workers);
      if (workers == 1) base = r.secs;
      if (!first) appendf(json, ",\n");
      first = false;
      appendf(json,
              "    {\"corpus\": \"%s\", \"workers\": %zu, \"blocks\": %zu, "
              "\"ratio\": %.4f, \"seconds\": %.4f, \"mib_per_s\": %.1f, "
              "\"speedup_vs_1\": %.2f}",
              strato::corpus::to_string(c), workers, blocks.size(),
              static_cast<double>(r.wire_bytes) / raw, r.secs, mib / r.secs,
              base / r.secs);
    }
  }
  appendf(json, "\n  ]\n}\n");
  return strato::bench::write_output(json, argc, argv);
}
