// Shared output plumbing for the scaling benches.
//
// Every bench builds its JSON object into a string, prints it to stdout
// (human runs, CI logs) and, when invoked with an output path as argv[1],
// writes the identical bytes there. scripts/check_bench.sh relies on the
// file form to compare a fresh run against the committed BENCH_*.json
// trajectory without scraping logs.
#pragma once

#include <cstdio>
#include <string>

namespace strato::bench {

/// Append printf-formatted text to `out`.
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
}

/// Print `json` to stdout and mirror it to argv[1] when given.
/// Returns a process exit code.
inline int write_output(const std::string& json, int argc, char** argv) {
  std::fwrite(json.data(), 1, json.size(), stdout);
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", argv[1]);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace strato::bench
