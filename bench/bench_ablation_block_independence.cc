// Ablation: what does block independence cost?
//
// Section III-B: every 128 KB channel block is self-contained ("contains
// all the information to be decompressed by the receiver, including ...
// the compression dictionary"). That robustness has a ratio price: each
// block starts with a cold dictionary. This bench compares self-contained
// blocks against a rolling 64 KB cross-block window at several block
// sizes, over all three corpus classes — quantifying why the paper's
// 128 KB choice is comfortable (the penalty is small there) while tiny
// blocks would make independence expensive.
#include <cstdio>

#include "compress/streaming.h"
#include "corpus/generator.h"
#include "expkit/tables.h"

using namespace strato;

namespace {

struct Cell {
  double independent_ratio = 0.0;
  double streaming_ratio = 0.0;
};

Cell measure(corpus::Compressibility cls, std::size_t block_size) {
  constexpr std::size_t kTotal = 8 << 20;
  auto gen_a = corpus::make_generator(cls, 17);
  auto gen_b = corpus::make_generator(cls, 17);
  compress::StreamingLzCompressor streaming;
  compress::Lz77Params params;
  common::Bytes scratch(compress::lz77_max_compressed_size(block_size));

  std::size_t independent = 0, stream = 0;
  for (std::size_t done = 0; done < kTotal; done += block_size) {
    const auto raw_a = corpus::take(*gen_a, block_size);
    independent += compress::lz77_compress(raw_a, scratch, params);
    const auto raw_b = corpus::take(*gen_b, block_size);
    stream += streaming.compress_block(raw_b).size();
  }
  const double total = static_cast<double>(kTotal);
  return {static_cast<double>(independent) / total,
          static_cast<double>(stream) / total};
}

}  // namespace

int main() {
  std::printf(
      "Ablation: self-contained blocks (the paper's design) vs a rolling\n"
      "64 KB cross-block window, FastLz engine, 8 MB per cell.\n\n");
  for (const auto cls :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    std::printf("--- %s data ---\n", corpus::to_string(cls));
    expkit::TablePrinter table;
    table.header({"block size", "independent ratio", "streaming ratio",
                  "independence penalty"});
    for (const std::size_t bs :
         {std::size_t{2} << 10, std::size_t{8} << 10, std::size_t{32} << 10,
          std::size_t{128} << 10}) {
      const Cell c = measure(cls, bs);
      const double penalty =
          (c.independent_ratio - c.streaming_ratio) /
          std::max(1e-9, c.streaming_ratio);
      table.row({std::to_string(bs >> 10) + " KB",
                 expkit::fmt(c.independent_ratio, 3),
                 expkit::fmt(c.streaming_ratio, 3),
                 "+" + expkit::fmt(penalty * 100.0, 1) + "%"});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Expected shape: at 2 KB blocks independence costs tens of percent of\n"
      "compressed size; at the paper's 128 KB it is a few percent — the\n"
      "robustness (order/loss tolerance, per-block codec switching) is\n"
      "nearly free, which justifies Section III-B's design.\n");
  return 0;
}
