// Table II reproduction: average completion times (SD) of the 50 GB
// sender->receiver job for the static levels NO/LIGHT/MEDIUM/HEAVY and the
// adaptive scheme (DYNAMIC), across data compressibility (HIGH / MODERATE
// / LOW) and 0-3 concurrent background TCP connections.
//
// Usage: bench_table2_completion [--calibrate] [--reps N] [--gb N]
//                                [--paper-mode]
//   --calibrate   re-measure the real codecs instead of the pinned model
//   --reps N      repetitions per cell (default 3)
//   --gb N        data volume per run in GB (default 50, like the paper)
//   --paper-mode  scale codec speeds to 0.4x, approximating the paper's
//                 Java QuickLZ/LZMA on 2008 Xeons (see EXPERIMENTS.md;
//                 this removes the LIGHT-wins-on-MODERATE inversion)
//
// Each cell prints "measured (sd) | paper (sd)". The trailing summary
// checks the paper's two headline claims.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/stats.h"
#include "expkit/paper_data.h"
#include "expkit/policies.h"
#include "expkit/tables.h"
#include "vsim/transfer.h"

using namespace strato;

namespace {

struct Options {
  bool calibrate = false;
  bool paper_mode = false;
  int reps = 3;
  double gb = 50.0;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--calibrate") == 0) {
      opt.calibrate = true;
    } else if (std::strcmp(argv[i], "--paper-mode") == 0) {
      opt.paper_mode = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      opt.reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--gb") == 0 && i + 1 < argc) {
      opt.gb = std::atof(argv[++i]);
    }
  }
  return opt;
}

constexpr corpus::Compressibility kClasses[3] = {
    corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
    corpus::Compressibility::kLow};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  vsim::CodecModel model = vsim::CodecModel::defaults();
  if (opt.calibrate) {
    std::printf("calibrating codec model from the real codecs...\n");
    model = vsim::CodecModel::calibrate();
  }

  std::printf(
      "Table II: completion times of the 50 GB sample job, seconds.\n"
      "Cell format: measured mean (sd)  |  paper mean (sd). '*' marks the\n"
      "fastest policy per column (measured).%s\n\n",
      opt.paper_mode ? " [paper-mode: codecs at 0.4x]" : "");

  // results[bg][policy][class]
  double mean[4][5][3], sd[4][5][3];
  for (int bg = 0; bg < 4; ++bg) {
    for (int pol = 0; pol < 5; ++pol) {
      for (int cls = 0; cls < 3; ++cls) {
        vsim::TransferConfig cfg;
        cfg.data = kClasses[cls];
        cfg.bg_flows = bg;
        cfg.total_bytes =
            static_cast<std::uint64_t>(opt.gb * 1e9);
        cfg.model = model;
        cfg.codec_speed_factor = opt.paper_mode ? 0.4 : 1.0;
        cfg.seed = 1000 + static_cast<std::uint64_t>(bg * 100 + cls);
        const std::string name = expkit::kPolicyNames[pol];
        const auto rep = vsim::run_repeated(
            cfg, opt.reps, [&name](vsim::TransferExperiment& exp) {
              return expkit::make_policy(name, exp);
            });
        mean[bg][pol][cls] = rep.mean_s;
        sd[bg][pol][cls] = rep.sd_s;
      }
    }
  }

  for (int bg = 0; bg < 4; ++bg) {
    std::printf("--- %d concurrent TCP connection%s ---\n", bg,
                bg == 1 ? "" : "s");
    expkit::TablePrinter table;
    table.header({"Compression", "HIGH", "MODERATE", "LOW"});
    for (int pol = 0; pol < 5; ++pol) {
      std::vector<std::string> row{expkit::kPolicyNames[pol]};
      for (int cls = 0; cls < 3; ++cls) {
        double best = 1e18;
        for (int p2 = 0; p2 < 5; ++p2) {
          best = std::min(best, mean[bg][p2][cls]);
        }
        const bool fastest = mean[bg][pol][cls] <= best + 1e-9;
        row.push_back(
            std::string(fastest ? "*" : " ") +
            expkit::mean_sd(mean[bg][pol][cls], sd[bg][pol][cls]) + " | " +
            expkit::mean_sd(expkit::kPaperTable2[bg][pol][cls],
                            expkit::kPaperTable2Sd[bg][pol][cls]));
      }
      table.row(row);
    }
    std::printf("%s\n", table.str().c_str());
  }

  // Headline claims.
  double worst_gap = 0.0;
  double best_speedup = 0.0;
  for (int bg = 0; bg < 4; ++bg) {
    for (int cls = 0; cls < 3; ++cls) {
      double best_static = 1e18;
      for (int pol = 0; pol < 4; ++pol) {
        best_static = std::min(best_static, mean[bg][pol][cls]);
      }
      worst_gap = std::max(
          worst_gap, mean[bg][4][cls] / best_static - 1.0);
      best_speedup =
          std::max(best_speedup, mean[bg][0][cls] / mean[bg][4][cls]);
    }
  }
  std::printf(
      "DYNAMIC vs fastest static level: worst case +%.1f%% (paper: at most "
      "+22%%)\n",
      worst_gap * 100.0);
  std::printf(
      "DYNAMIC vs NO compression: best speedup %.1fx (paper: up to 4x)\n",
      best_speedup);
  return 0;
}
