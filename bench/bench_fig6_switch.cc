// Fig. 6 reproduction: responsiveness to changes in data compressibility.
//
// The workload alternates between the highly compressible stream (HIGH)
// and the incompressible one (LOW) every 10 GB, 50 GB total, no background
// traffic. The paper's reading: switches towards lower compression are
// detected immediately; switches towards higher compression can lag when
// level 0 accumulated a large backoff (without compression the application
// data rate is insensitive to compressibility).
#include <cstdio>

#include "timeline_common.h"

using namespace strato;

int main(int argc, char** argv) {
  std::printf(
      "Fig. 6: adaptive compression under alternating compressibility\n"
      "(HIGH <-> LOW every 10 GB, 50 GB total, no background traffic).\n\n");
  vsim::TransferConfig cfg;
  cfg.data = corpus::Compressibility::kHigh;
  cfg.data_b = corpus::Compressibility::kLow;
  cfg.segment_bytes = 10'000'000'000ULL;
  cfg.bg_flows = 0;
  cfg.total_bytes = 50'000'000'000ULL;
  cfg.seed = 6;
  const auto res = benchutil::run_and_render(
      cfg, 0.2, benchutil::csv_path_from_args(argc, argv));

  // Quantify adaptation: wire bytes must sit strictly between the pure
  // HIGH and pure LOW outcomes.
  const double wire_frac =
      static_cast<double>(res.wire_bytes) / static_cast<double>(res.raw_bytes);
  std::printf(
      "\nwire/raw = %.2f — between the pure-HIGH (~0.17) and pure-LOW\n"
      "(~0.95) cases: the scheme compresses the HIGH segments and backs\n"
      "off during the LOW segments.\n",
      wire_frac);
  return 0;
}
