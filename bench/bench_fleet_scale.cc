// Fleet-scale acceptance bench: ~100k multi-tenant adaptive-compression
// flows over a rack -> spine -> WAN fabric, single-threaded, deterministic
// per seed. Emits one JSON object on stdout and mirrors it to the file
// named by argv[1] (the committed BENCH_fleet.json trajectory — see
// scripts/check_bench.sh).
//
// Acceptance targets:
//   * the run completes within kWallBudgetS (60 s) of wall clock on one
//     core — the structs-of-arrays FlowTable + batched epochs exist to
//     make this cheap;
//   * `metrics_digest` (FNV-1a over the full FleetMetrics JSON) and the
//     per-tenant flow counts are deterministic and must reproduce
//     exactly between runs; `wall_s` / `kflows_per_s` carry the usual
//     tolerance band, gated on hardware_concurrency.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_json.h"
#include "vsim/fleet.h"
#include "vsim/topology.h"

namespace {

using strato::bench::appendf;
using strato::common::SimTime;
using strato::vsim::BgTrafficConfig;
using strato::vsim::FleetConfig;
using strato::vsim::FleetEngine;
using strato::vsim::FleetMetrics;
using strato::vsim::ShareMode;
using strato::vsim::TenantPolicy;
using strato::vsim::TenantSpec;
using strato::vsim::Topology;

constexpr double kWallBudgetS = 60.0;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

TenantSpec transfer_tenant(const char* name, double weight,
                           TenantPolicy policy,
                           std::array<double, 3> mix) {
  TenantSpec t;
  t.name = name;
  t.weight = weight;
  t.share = ShareMode::kPerTenant;
  t.policy = policy;
  t.arrival_per_s = 41.0;       // ~24.5k flows across the 600 s horizon
  t.flow_limit = 24'500;
  t.max_in_flight = 1500;       // admission cap bounds the active set
  t.mean_flow_bytes = 16ull << 20;
  t.min_flow_bytes = 1ull << 20;
  t.class_mix = mix;
  t.wan_fraction = 0.5;
  return t;
}

FleetConfig fleet_100k() {
  FleetConfig cfg;
  cfg.topology = Topology::rack_spine_wan(Topology::FleetShape{});
  cfg.seed = 424242;
  cfg.horizon = SimTime::seconds(600);
  cfg.expected_flows = 100'000;

  // Four production tenant classes (2 adaptive, 2 pinned) + background.
  cfg.tenants.push_back(transfer_tenant(
      "analytics", 2.0, TenantPolicy::dynamic(), {1.0, 0.0, 0.0}));
  cfg.tenants.push_back(transfer_tenant(
      "web-logs", 1.0, TenantPolicy::dynamic(), {0.2, 0.6, 0.2}));
  cfg.tenants.push_back(transfer_tenant(
      "backup", 1.0, TenantPolicy::fixed(1), {0.5, 0.5, 0.0}));
  cfg.tenants.push_back(transfer_tenant(
      "media", 1.0, TenantPolicy::fixed(0), {0.0, 0.0, 1.0}));

  BgTrafficConfig bg;
  bg.arrival_per_s = 4.0;
  bg.mean_holding_s = 30.0;
  bg.initial_flows = 64;
  bg.max_flows = 512;
  TenantSpec bgt = strato::vsim::background_tenant(bg);
  bgt.flow_limit = 2'000;
  cfg.tenants.push_back(bgt);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const FleetConfig cfg = fleet_100k();
  FleetEngine engine(cfg);

  const auto start = std::chrono::steady_clock::now();
  const FleetMetrics m = engine.run();
  const auto end = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(end - start).count();
  const std::string metrics_json = m.to_json();

  std::string json;
  appendf(json, "{\n  \"bench\": \"fleet_scale\",\n");
  appendf(json, "  \"seed\": %llu,\n",
          static_cast<unsigned long long>(cfg.seed));
  appendf(json, "  \"epoch_ms\": %.0f,\n", cfg.epoch.to_seconds() * 1e3);
  appendf(json, "  \"hardware_concurrency\": %u,\n",
          std::thread::hardware_concurrency());
  appendf(json, "  \"flows_total\": %llu,\n",
          static_cast<unsigned long long>(m.flows_total));
  appendf(json, "  \"flows_completed\": %llu,\n",
          static_cast<unsigned long long>(m.flows_completed));
  appendf(json, "  \"epochs\": %llu,\n",
          static_cast<unsigned long long>(m.epochs));
  appendf(json, "  \"sim_completed_s\": %.3f,\n", m.sim_completed_s);
  appendf(json, "  \"p50_s\": %.6f,\n", m.completion_all_s.quantile(0.5));
  appendf(json, "  \"p99_s\": %.6f,\n", m.completion_all_s.quantile(0.99));
  appendf(json, "  \"p999_s\": %.6f,\n", m.completion_all_s.quantile(0.999));
  appendf(json, "  \"metrics_digest\": \"%016llx\",\n",
          static_cast<unsigned long long>(fnv1a(metrics_json)));
  appendf(json, "  \"wall_s\": %.3f,\n", wall_s);
  appendf(json, "  \"kflows_per_s\": %.1f,\n",
          static_cast<double>(m.flows_completed) / 1e3 /
              (wall_s > 0.0 ? wall_s : 1.0));
  appendf(json, "  \"results\": [\n");
  for (std::size_t t = 0; t < m.tenants.size(); ++t) {
    const auto& tm = m.tenants[t];
    appendf(json,
            "    {\"name\": \"%s\", \"spawned\": %llu, \"admitted\": %llu, "
            "\"rejected\": %llu, \"completed\": %llu, \"p99_s\": %.6f}%s\n",
            tm.name.c_str(), static_cast<unsigned long long>(tm.spawned),
            static_cast<unsigned long long>(tm.admitted),
            static_cast<unsigned long long>(tm.rejected),
            static_cast<unsigned long long>(tm.completed),
            tm.completion_s.quantile(0.99),
            t + 1 < m.tenants.size() ? "," : "");
  }
  appendf(json, "  ]\n}\n");

  if (wall_s > kWallBudgetS) {
    std::fprintf(stderr,
                 "fleet_scale: wall %.1f s exceeds the %.0f s budget\n",
                 wall_s, kWallBudgetS);
    strato::bench::write_output(json, argc, argv);
    return 1;
  }
  return strato::bench::write_output(json, argc, argv);
}
