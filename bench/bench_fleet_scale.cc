// Fleet-scale acceptance bench: ~1M multi-tenant adaptive-compression
// flows over a rack -> spine -> WAN fabric, deterministic per seed.
// Emits one JSON object on stdout and mirrors it to the file named by
// argv[1] (the committed BENCH_fleet.json trajectory — see
// scripts/check_bench.sh).
//
// Env knobs (all digest-relevant knobs change `flows_total`, so a
// mismatched comparison is loud, not silent):
//   * STRATO_FLEET_FLOWS: total transfer-flow target. Unset = 1,000,000.
//     The special value 100000 selects the legacy pre-incremental-
//     allocator configuration verbatim (digest 90d1a3b0a8e978bf) — the
//     compat anchor proving the rewrite left the simulation bit-exact.
//     Any other value scales the 1M shape (flow_limit = N/4 per tenant).
//   * STRATO_FLEET_DRAIN_WORKERS: drain worker threads (default 1).
//     Any value reproduces the same digest; see FleetConfig.
//
// Acceptance targets:
//   * the run completes within kWallBudgetS (60 s) of wall clock on one
//     core — incremental max-min allocation, cached epoch kernels and
//     the fused serial drain exist to make this cheap;
//   * `metrics_digest` (FNV-1a over the full FleetMetrics JSON) and the
//     per-tenant flow counts are deterministic and must reproduce
//     exactly between runs; `wall_s` / `kflows_per_s` carry the usual
//     tolerance band plus an upward floor (BENCH_MIN_GAIN), gated on
//     hardware_concurrency.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_json.h"
#include "vsim/fleet.h"
#include "vsim/topology.h"

namespace {

using strato::bench::appendf;
using strato::common::SimTime;
using strato::vsim::BgTrafficConfig;
using strato::vsim::FleetConfig;
using strato::vsim::FleetEngine;
using strato::vsim::FleetMetrics;
using strato::vsim::ShareMode;
using strato::vsim::TenantPolicy;
using strato::vsim::TenantSpec;
using strato::vsim::Topology;

constexpr double kWallBudgetS = 60.0;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

TenantSpec transfer_tenant(const char* name, double weight,
                           TenantPolicy policy, std::array<double, 3> mix,
                           double arrival_per_s, std::uint64_t flow_limit,
                           int max_in_flight) {
  TenantSpec t;
  t.name = name;
  t.weight = weight;
  t.share = ShareMode::kPerTenant;
  t.policy = policy;
  t.arrival_per_s = arrival_per_s;
  t.flow_limit = flow_limit;
  t.max_in_flight = max_in_flight;
  t.mean_flow_bytes = 16ull << 20;
  t.min_flow_bytes = 1ull << 20;
  t.class_mix = mix;
  t.wan_fraction = 0.5;
  return t;
}

/// The pre-incremental-allocator bench configuration, kept verbatim: the
/// run's digest (90d1a3b0a8e978bf for seed 424242) was produced by the
/// full-rebuild engine before this optimization existed, so reproducing
/// it here proves end-to-end bit-exactness of the incremental path.
FleetConfig fleet_compat_100k() {
  FleetConfig cfg;
  cfg.topology = Topology::rack_spine_wan(Topology::FleetShape{});
  cfg.seed = 424242;
  cfg.horizon = SimTime::seconds(600);
  cfg.expected_flows = 100'000;

  cfg.tenants.push_back(transfer_tenant("analytics", 2.0,
                                        TenantPolicy::dynamic(),
                                        {1.0, 0.0, 0.0}, 41.0, 24'500, 1500));
  cfg.tenants.push_back(transfer_tenant("web-logs", 1.0,
                                        TenantPolicy::dynamic(),
                                        {0.2, 0.6, 0.2}, 41.0, 24'500, 1500));
  cfg.tenants.push_back(transfer_tenant("backup", 1.0, TenantPolicy::fixed(1),
                                        {0.5, 0.5, 0.0}, 41.0, 24'500, 1500));
  cfg.tenants.push_back(transfer_tenant("media", 1.0, TenantPolicy::fixed(0),
                                        {0.0, 0.0, 1.0}, 41.0, 24'500, 1500));

  BgTrafficConfig bg;
  bg.arrival_per_s = 4.0;
  bg.mean_holding_s = 30.0;
  bg.initial_flows = 64;
  bg.max_flows = 512;
  TenantSpec bgt = strato::vsim::background_tenant(bg);
  bgt.flow_limit = 2'000;
  cfg.tenants.push_back(bgt);
  return cfg;
}

/// Million-flow shape. The fleet is deliberately overloaded (arrivals
/// outpace the spine), so each tenant's in-flight count pins at
/// max_in_flight and completion is capacity-bound: lowering the
/// admission cap shrinks the per-epoch active set — and with it epoch
/// cost — without reducing completion throughput. The steady pinned
/// counts are also what lets the engine skip the kPerTenant reweight
/// (and the allocator the refold) on most epochs.
FleetConfig fleet_large(std::uint64_t transfer_flows) {
  FleetConfig cfg;
  cfg.topology = Topology::rack_spine_wan(Topology::FleetShape{});
  cfg.seed = 424242;
  cfg.horizon = SimTime::seconds(600);
  cfg.drain_factor = 20.0;  // capacity-bound drain runs long past arrivals
  cfg.expected_flows = transfer_flows + transfer_flows / 16 + 1024;

  const std::uint64_t per_tenant = transfer_flows / 4;
  // Arrivals complete within the horizon (~566 s at the 1M default);
  // everything beyond the in-flight cap queues unbounded.
  const double arrival =
      static_cast<double>(per_tenant) / (cfg.horizon.to_seconds() * 0.94);
  cfg.tenants.push_back(transfer_tenant("analytics", 2.0,
                                        TenantPolicy::dynamic(),
                                        {1.0, 0.0, 0.0}, arrival, per_tenant,
                                        500));
  cfg.tenants.push_back(transfer_tenant("web-logs", 1.0,
                                        TenantPolicy::dynamic(),
                                        {0.2, 0.6, 0.2}, arrival, per_tenant,
                                        500));
  cfg.tenants.push_back(transfer_tenant("backup", 1.0, TenantPolicy::fixed(1),
                                        {0.5, 0.5, 0.0}, arrival, per_tenant,
                                        500));
  cfg.tenants.push_back(transfer_tenant("media", 1.0, TenantPolicy::fixed(0),
                                        {0.0, 0.0, 1.0}, arrival, per_tenant,
                                        500));

  BgTrafficConfig bg;
  bg.arrival_per_s = 4.0;
  bg.mean_holding_s = 30.0;
  bg.initial_flows = 64;
  bg.max_flows = 512;
  TenantSpec bgt = strato::vsim::background_tenant(bg);
  bgt.flow_limit = transfer_flows / 50;
  cfg.tenants.push_back(bgt);
  return cfg;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::strtoull(v, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t flows_target =
      env_u64("STRATO_FLEET_FLOWS", 1'000'000);
  FleetConfig cfg = flows_target == 100'000 ? fleet_compat_100k()
                                            : fleet_large(flows_target);
  cfg.drain_workers = static_cast<int>(
      env_u64("STRATO_FLEET_DRAIN_WORKERS", 1));
  FleetEngine engine(cfg);

  const auto start = std::chrono::steady_clock::now();
  const FleetMetrics m = engine.run();
  const auto end = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(end - start).count();
  const std::string metrics_json = m.to_json();

  std::string json;
  appendf(json, "{\n  \"bench\": \"fleet_scale\",\n");
  appendf(json, "  \"seed\": %llu,\n",
          static_cast<unsigned long long>(cfg.seed));
  appendf(json, "  \"epoch_ms\": %.0f,\n", cfg.epoch.to_seconds() * 1e3);
  appendf(json, "  \"flows_target\": %llu,\n",
          static_cast<unsigned long long>(flows_target));
  appendf(json, "  \"drain_workers\": %d,\n", cfg.drain_workers);
  appendf(json, "  \"hardware_concurrency\": %u,\n",
          std::thread::hardware_concurrency());
  appendf(json, "  \"flows_total\": %llu,\n",
          static_cast<unsigned long long>(m.flows_total));
  appendf(json, "  \"flows_completed\": %llu,\n",
          static_cast<unsigned long long>(m.flows_completed));
  appendf(json, "  \"epochs\": %llu,\n",
          static_cast<unsigned long long>(m.epochs));
  appendf(json, "  \"sim_completed_s\": %.3f,\n", m.sim_completed_s);
  appendf(json, "  \"p50_s\": %.6f,\n", m.completion_all_s.quantile(0.5));
  appendf(json, "  \"p99_s\": %.6f,\n", m.completion_all_s.quantile(0.99));
  appendf(json, "  \"p999_s\": %.6f,\n", m.completion_all_s.quantile(0.999));
  appendf(json, "  \"metrics_digest\": \"%016llx\",\n",
          static_cast<unsigned long long>(fnv1a(metrics_json)));
  appendf(json, "  \"wall_s\": %.3f,\n", wall_s);
  appendf(json, "  \"kflows_per_s\": %.1f,\n",
          static_cast<double>(m.flows_completed) / 1e3 /
              (wall_s > 0.0 ? wall_s : 1.0));
  appendf(json, "  \"results\": [\n");
  for (std::size_t t = 0; t < m.tenants.size(); ++t) {
    const auto& tm = m.tenants[t];
    appendf(json,
            "    {\"name\": \"%s\", \"spawned\": %llu, \"admitted\": %llu, "
            "\"rejected\": %llu, \"completed\": %llu, \"p99_s\": %.6f}%s\n",
            tm.name.c_str(), static_cast<unsigned long long>(tm.spawned),
            static_cast<unsigned long long>(tm.admitted),
            static_cast<unsigned long long>(tm.rejected),
            static_cast<unsigned long long>(tm.completed),
            tm.completion_s.quantile(0.99),
            t + 1 < m.tenants.size() ? "," : "");
  }
  appendf(json, "  ]\n}\n");

  if (wall_s > kWallBudgetS) {
    std::fprintf(stderr,
                 "fleet_scale: wall %.1f s exceeds the %.0f s budget\n",
                 wall_s, kWallBudgetS);
    strato::bench::write_output(json, argc, argv);
    return 1;
  }
  return strato::bench::write_output(json, argc, argv);
}
