// Extension experiment: multi-phase workload traces.
//
// Fig. 6 alternates two compressibilities; real jobs move through many
// phases. This bench replays a five-phase trace (archive ingest, raw
// image shuffle, text processing, another raw burst, final archive) and
// compares the static levels against DYNAMIC — per phase no single static
// level is right, so the gap to DYNAMIC widens beyond Table II.
//
// Usage: bench_ext_trace [CLASS:SIZE[,CLASS:SIZE...]]
#include <cstdio>

#include "corpus/schedule.h"
#include "expkit/policies.h"
#include "expkit/tables.h"
#include "vsim/transfer.h"

using namespace strato;

int main(int argc, char** argv) {
  const char* spec = argc > 1
                         ? argv[1]
                         : "HIGH:8G,LOW:4G,MODERATE:12G,LOW:2G,HIGH:6G";
  std::vector<corpus::Segment> schedule;
  try {
    schedule = corpus::parse_schedule(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bad schedule '%s': %s\n", spec, e.what());
    return 1;
  }
  const std::uint64_t total = corpus::schedule_length(schedule);
  std::printf(
      "Extension: multi-phase workload trace\n  %s  (%.0f GB total, 1 "
      "background flow)\n\n",
      spec, static_cast<double>(total) / 1e9);

  expkit::TablePrinter table;
  table.header({"policy", "completion [s]", "wire [GB]", "vs DYNAMIC"});
  double dynamic_s = 0.0;
  std::vector<std::pair<std::string, vsim::TransferResult>> rows;
  for (const char* p : {"DYNAMIC", "NO", "LIGHT", "MEDIUM", "HEAVY"}) {
    vsim::TransferConfig cfg;
    cfg.schedule = schedule;
    cfg.total_bytes = total;
    cfg.bg_flows = 1;
    cfg.seed = 61;
    vsim::TransferExperiment exp(cfg);
    const auto policy = expkit::make_policy(p, exp);
    rows.emplace_back(p, exp.run(*policy));
    if (rows.back().first == "DYNAMIC") {
      dynamic_s = rows.back().second.completion_s;
    }
  }
  for (const auto& [name, res] : rows) {
    table.row({name, expkit::fmt_seconds(res.completion_s),
               expkit::fmt(static_cast<double>(res.wire_bytes) / 1e9, 1),
               expkit::fmt(res.completion_s / dynamic_s, 2) + "x"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape: choosing a static level for a multi-phase trace requires\n"
      "knowing the trace — and a wrong pick costs 1.7-7x here. DYNAMIC\n"
      "re-settles within a few decision windows of every phase change and\n"
      "finishes within a few percent of whichever static level happens to\n"
      "be best, without any advance knowledge.\n");
  return 0;
}
