// Fig. 2 reproduction: distribution of network I/O throughput as observed
// within the sending virtual machine.
//
// 50 GB are sent per technique, timestamping every 20 MB (the paper's
// methodology); the per-chunk rates are shown as five-number summaries
// and boxplots on a shared MBit/s axis.
#include <cstdio>

#include "expkit/ascii_chart.h"
#include "expkit/tables.h"
#include "vsim/iobench.h"

using namespace strato;

int main() {
  constexpr std::uint64_t kTotal = 50'000'000'000ULL;  // the paper's 50 GB
  constexpr std::uint64_t kChunk = 20'000'000ULL;      // 20 MB timestamps

  std::printf(
      "Fig. 2: distribution of network send throughput observed inside the "
      "VM\n(50 GB, one sample per 20 MB, MBit/s).\n\n");

  expkit::TablePrinter table;
  table.header({"technique", "min", "q1", "median", "q3", "max", "mean",
                "sd", "outliers"});
  std::vector<std::pair<std::string, common::FiveNumber>> plots;
  for (const auto tech : vsim::kAllTechs) {
    const auto s = vsim::run_net_throughput(tech, kTotal, kChunk, 7);
    const auto f = s.five_number();
    table.row({vsim::to_string(tech), expkit::fmt(f.min, 0),
               expkit::fmt(f.q1, 0), expkit::fmt(f.median, 0),
               expkit::fmt(f.q3, 0), expkit::fmt(f.max, 0),
               expkit::fmt(s.mean(), 0), expkit::fmt(s.stddev(), 0),
               std::to_string(f.outliers)});
    plots.emplace_back(vsim::to_string(tech), f);
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("Boxplots (0 .. 1000 MBit/s):\n");
  for (const auto& [label, f] : plots) {
    std::printf("%s\n",
                expkit::render_boxplot(label, f, 0.0, 1000.0).c_str());
  }
  std::printf(
      "\nPaper findings reproduced: local-cloud techniques fluctuate only\n"
      "marginally more than native; Amazon EC2 swings between ~zero and\n"
      "~1 GBit/s at tens-of-milliseconds granularity.\n");
  return 0;
}
