// Ablation: decision-model shootout — the paper's rate-based DYNAMIC
// scheme against the related-work baselines of Section V:
//
//  * METRIC (Krintz/Sucu-style): offline-trained codec table + displayed
//    CPU idle + displayed bandwidth. Inside a VM it believes the skewed
//    metrics of Section II.
//  * QUEUE (Jeannot-style): FIFO-occupancy signal.
//
// Run across virtualization profiles; the native profile displays honest
// metrics (METRIC does fine), the KVM-paravirt profile hides ~93 % of the
// I/O CPU cost (METRIC overcompresses), which is exactly the paper's
// argument for a metrics-free decision model.
#include <cstdio>

#include "expkit/policies.h"
#include "expkit/tables.h"
#include "vsim/transfer.h"

using namespace strato;

namespace {

double run(vsim::VirtTech tech, corpus::Compressibility data,
           const std::string& policy_name) {
  vsim::TransferConfig cfg;
  cfg.tech = tech;
  cfg.data = data;
  cfg.bg_flows = 1;
  cfg.total_bytes = 20'000'000'000ULL;
  cfg.seed = 55;
  // Make CPU genuinely scarce (the regime the paper's testbed was in):
  // codecs run at ~0.4x, so believing "the CPU is idle" hurts.
  cfg.codec_speed_factor = 0.4;
  vsim::TransferExperiment exp(cfg);
  const auto policy = expkit::make_policy(policy_name, exp);
  return exp.run(*policy).completion_s;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: decision models across virtualization techniques\n"
      "(20 GB, 1 background flow, codecs at 0.4x speed; seconds).\n\n");
  for (const auto data :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    std::printf("--- %s data ---\n", corpus::to_string(data));
    expkit::TablePrinter table;
    table.header({"technique", "best static", "DYNAMIC", "METRIC", "QUEUE"});
    for (const auto tech :
         {vsim::VirtTech::kNative, vsim::VirtTech::kKvmPara,
          vsim::VirtTech::kEc2}) {
      double best_static = 1e18;
      for (const char* p : {"NO", "LIGHT", "MEDIUM", "HEAVY"}) {
        best_static = std::min(best_static, run(tech, data, p));
      }
      table.row({vsim::to_string(tech), expkit::fmt_seconds(best_static),
                 expkit::fmt_seconds(run(tech, data, "DYNAMIC")),
                 expkit::fmt_seconds(run(tech, data, "METRIC")),
                 expkit::fmt_seconds(run(tech, data, "QUEUE"))});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Shape: DYNAMIC tracks the best static level on every technique\n"
      "(within ~10%%) without metrics or training. METRIC's choice is\n"
      "dictated by whatever CPU-idle figure the environment displays, so\n"
      "it swings between matching the best level and being ~3x off — and\n"
      "which environment is which cannot be known a priori, exactly the\n"
      "paper's argument against metric-driven models in clouds. QUEUE is\n"
      "erratic for the analogous reason (the occupancy signal conflates\n"
      "the two possible bottlenecks).\n");
  return 0;
}
