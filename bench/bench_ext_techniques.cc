// Extension experiment: Table II across virtualization techniques.
//
// The paper's Section IV evaluates on KVM (paravirt.) only. The simulator
// carries profiles for all techniques of the Section II study, so this
// bench repeats the completion-time experiment per technique — including
// Amazon EC2, whose violent throughput fluctuation is the hardest input
// for a rate-based controller (the dead band alpha exists exactly for
// this case).
#include <cstdio>

#include "expkit/policies.h"
#include "expkit/tables.h"
#include "vsim/transfer.h"

using namespace strato;

int main() {
  constexpr std::uint64_t kBytes = 20'000'000'000ULL;
  std::printf(
      "Extension: the Table II experiment on every virtualization "
      "technique\n(20 GB, 1 background flow, t = 2 s, alpha = 0.2; "
      "seconds).\n\n");
  for (const auto data :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    std::printf("--- %s data ---\n", corpus::to_string(data));
    expkit::TablePrinter table;
    table.header({"technique", "NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC",
                  "DYNAMIC vs best"});
    for (const auto tech : vsim::kAllTechs) {
      std::vector<std::string> row{vsim::to_string(tech)};
      double best = 1e18, dynamic = 0;
      for (const char* p : {"NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC"}) {
        vsim::TransferConfig cfg;
        cfg.tech = tech;
        cfg.data = data;
        cfg.bg_flows = 1;
        cfg.total_bytes = kBytes;
        cfg.seed = 41;
        vsim::TransferExperiment exp(cfg);
        const auto policy = expkit::make_policy(p, exp);
        const double secs = exp.run(*policy).completion_s;
        row.push_back(expkit::fmt_seconds(secs));
        if (std::string(p) == "DYNAMIC") {
          dynamic = secs;
        } else {
          best = std::min(best, secs);
        }
      }
      row.push_back("+" + expkit::fmt((dynamic / best - 1.0) * 100.0, 1) +
                    "%");
      table.row(row);
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Expected shape: the adaptive scheme stays near the best static\n"
      "level on every technique. On EC2 the dead band absorbs the\n"
      "two-state link swings; the gap to the best static level there is\n"
      "the price of probing under noise the paper discusses for Fig. 5.\n");
  return 0;
}
