// Fig. 4 reproduction: behaviour of the adaptive compression scheme with
// highly compressible data (HIGH) and no background traffic.
//
// The paper's figure shows the scheme quickly settling on LIGHT (the
// QuickLZ-speed level), with optimistic probes to the neighbouring levels
// becoming exponentially rarer thanks to the backoff.
#include <cstdio>

#include "timeline_common.h"

using namespace strato;

int main(int argc, char** argv) {
  std::printf(
      "Fig. 4: adaptive compression, HIGH compressibility, no background "
      "traffic\n(50 GB, t = 2 s, alpha = 0.2).\n\n");
  vsim::TransferConfig cfg;
  cfg.data = corpus::Compressibility::kHigh;
  cfg.bg_flows = 0;
  cfg.total_bytes = 50'000'000'000ULL;
  cfg.seed = 4;
  const auto res = benchutil::run_and_render(
      cfg, 0.2, benchutil::csv_path_from_args(argc, argv));

  // The paper's reading of the figure: the best level dominates and the
  // probing decays.
  std::uint64_t total = 0, at_light = 0;
  for (std::size_t l = 0; l < res.blocks_per_level.size(); ++l) {
    total += res.blocks_per_level[l];
    if (l == 1) at_light = res.blocks_per_level[l];
  }
  std::printf(
      "\nLIGHT share of all blocks: %.1f%% (paper: the scheme settles on "
      "LIGHT\nwith exponentially rarer probes).\n",
      100.0 * static_cast<double>(at_light) / static_cast<double>(total));
  return 0;
}
