// Ablation: ladder generality — Algorithm 1 with four vs five levels.
//
// The paper assumes "a fixed set of n compression levels ... ordered by
// their respective time/compression ratio" and notes the same algorithm
// works for any n. This bench runs the real codecs over the real
// throttled transport (no simulator) with the standard 4-rung ladder and
// the extended 5-rung ladder (DEFLATE between MEDIUM and HEAVY), at
// several link speeds. A finer ladder lets DYNAMIC land closer to the
// true optimum when the optimum falls between the coarse rungs.
#include <cstdio>
#include <thread>

#include "core/policy.h"
#include "core/stream.h"
#include "core/throttled_pipe.h"
#include "corpus/generator.h"
#include "expkit/tables.h"

using namespace strato;

namespace {

struct Outcome {
  double seconds = 0.0;
  double wire_mb = 0.0;
  int final_level = 0;
};

Outcome run(const compress::CodecRegistry& registry, double link_bytes_s,
            std::size_t total) {
  auto link = std::make_shared<core::LinkShare>(link_bytes_s);
  core::ThrottledPipe pipe(link);
  std::thread drainer([&] {
    while (!pipe.read(256 * 1024).empty()) {
    }
  });

  core::AdaptiveConfig cfg;
  cfg.num_levels = static_cast<int>(registry.level_count());
  core::AdaptivePolicy policy(cfg, common::SimTime::ms(250));
  common::SteadyClock clock;
  core::CompressingWriter writer(pipe, registry, policy, clock);
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 13);

  common::Bytes chunk(128 * 1024);
  const auto t0 = clock.now();
  for (std::size_t sent = 0; sent < total; sent += chunk.size()) {
    gen->generate(chunk);
    writer.write(chunk);
  }
  writer.flush();
  pipe.close();
  drainer.join();
  return {(clock.now() - t0).to_seconds(),
          static_cast<double>(writer.framed_bytes()) / 1e6, policy.level()};
}

}  // namespace

int main() {
  constexpr std::size_t kTotal = 48 << 20;  // real codecs: keep it laptop-sized
  std::printf(
      "Ablation: 4-rung vs 5-rung ladder, real codecs over a real throttled "
      "pipe\n(%zu MB of MODERATE data per cell, t = 250 ms).\n\n",
      kTotal >> 20);
  expkit::TablePrinter table;
  table.header({"link [MB/s]", "4 rungs [s]", "wire [MB]", "5 rungs [s]",
                "wire [MB] "});
  for (const double link : {4e6, 10e6, 30e6, 80e6}) {
    const Outcome std4 =
        run(compress::CodecRegistry::standard(), link, kTotal);
    const Outcome ext5 =
        run(compress::CodecRegistry::extended(), link, kTotal);
    table.row({expkit::fmt(link / 1e6, 0), expkit::fmt(std4.seconds, 1),
               expkit::fmt(std4.wire_mb, 1), expkit::fmt(ext5.seconds, 1),
               expkit::fmt(ext5.wire_mb, 1)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: at high link speeds both ladders behave alike (the\n"
      "optimum is a cheap rung both have). On starved links the 5-rung\n"
      "ladder's DEFLATE rung ships fewer wire bytes than MEDIUM at\n"
      "affordable CPU, so the finer ladder is at least as fast — the\n"
      "algorithm generalises over n unchanged, as the paper claims.\n");
  return 0;
}
