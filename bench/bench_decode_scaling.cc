// Receive-side decode scaling: decompression throughput vs worker count on
// the text-like (MODERATE) corpus at the MEDIUM and HEAVY ladder rungs,
// plus a serial-vs-parallel identity check. Emits one JSON object on
// stdout and mirrors it to the file named by argv[1] (the committed
// BENCH_decode.json trajectory — see scripts/check_bench.sh).
//
// Acceptance target: >= 2x at 4 workers vs the inline serial baseline —
// only demonstrable on a machine with >= 4 hardware threads;
// `hardware_concurrency` is reported so harnesses can gate on it.
// `corpus_seed`, `blocks` and `ratio` are deterministic and must
// reproduce exactly between runs; the timing fields carry a tolerance
// band.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/bytes.h"
#include "common/checksum.h"
#include "compress/decode_pipeline.h"
#include "compress/framing.h"
#include "compress/registry.h"
#include "corpus/generator.h"

namespace {

using strato::bench::appendf;
using strato::common::Bytes;
using strato::common::ByteSpan;
using strato::compress::CodecRegistry;
using strato::compress::DecodePipelineConfig;
using strato::compress::ParallelBlockDecodePipeline;

constexpr std::size_t kBlockSize = 128 * 1024;
constexpr std::uint64_t kCorpusSeed = 1234;
constexpr std::size_t kFeedChunk = 1 << 20;  // receive in 1 MiB reads

/// Serially encode `total_bytes` of the corpus at `level` into one wire.
Bytes make_wire(const CodecRegistry& registry, int level,
                std::size_t total_bytes, std::size_t* blocks_out) {
  auto gen = strato::corpus::make_generator(
      strato::corpus::Compressibility::kModerate, kCorpusSeed);
  const auto& codec = *registry.level(static_cast<std::size_t>(level)).codec;
  Bytes wire;
  std::size_t blocks = 0;
  for (std::size_t done = 0; done < total_bytes; done += kBlockSize) {
    const Bytes block = strato::corpus::take(*gen, kBlockSize);
    const Bytes frame = strato::compress::encode_block(
        codec, static_cast<std::uint8_t>(level), block);
    wire.insert(wire.end(), frame.begin(), frame.end());
    ++blocks;
  }
  *blocks_out = blocks;
  return wire;
}

struct RunResult {
  double secs = -1.0;
  std::uint64_t digest = 0;
  std::uint64_t blocks = 0;
};

/// Decode the whole wire, feeding in chunks and draining eagerly enough to
/// keep the reorder window full without stalling on the in-order head.
RunResult run_once(const CodecRegistry& registry, const Bytes& wire,
                   std::size_t workers) {
  RunResult r;
  ParallelBlockDecodePipeline pipeline(
      registry, DecodePipelineConfig{workers, /*depth=*/0, /*segment=*/0});
  strato::common::Xxh64State hash;
  const auto start = std::chrono::steady_clock::now();
  std::size_t off = 0;
  while (off < wire.size()) {
    const std::size_t n = std::min(kFeedChunk, wire.size() - off);
    pipeline.feed(ByteSpan(wire.data() + off, n));
    off += n;
    while (pipeline.blocks_parsed() - pipeline.blocks_delivered() >
           pipeline.depth()) {
      const auto block = pipeline.next_block();
      if (!block) break;
      hash.update(block->data);
      ++r.blocks;
    }
  }
  while (const auto block = pipeline.next_block()) {
    hash.update(block->data);
    ++r.blocks;
  }
  const auto end = std::chrono::steady_clock::now();
  r.digest = hash.digest();
  r.secs = std::chrono::duration<double>(end - start).count();
  return r;
}

/// Parallel delivery must be byte-identical to the serial FrameAssembler.
bool identity_check(const CodecRegistry& registry, const Bytes& wire) {
  strato::compress::FrameAssembler serial(registry);
  serial.feed(wire);
  std::vector<Bytes> expect;
  while (auto b = serial.next_block()) expect.push_back(std::move(*b));

  ParallelBlockDecodePipeline pipeline(registry,
                                       DecodePipelineConfig{4, 0, 0});
  pipeline.feed(wire);
  std::size_t i = 0;
  while (const auto block = pipeline.next_block()) {
    if (i >= expect.size() ||
        !std::equal(block->data.begin(), block->data.end(),
                    expect[i].begin(), expect[i].end())) {
      std::fprintf(stderr, "identity FAILED at block %zu\n", i);
      return false;
    }
    ++i;
  }
  return i == expect.size();
}

}  // namespace

int main(int argc, char** argv) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const std::size_t total = 16ull * 1024 * 1024;
  const int levels[] = {2, 3};  // MEDIUM, HEAVY
  const std::size_t worker_counts[] = {1, 2, 4, 8};

  std::string json;
  appendf(json, "{\n  \"bench\": \"decode_scaling\",\n");
  appendf(json, "  \"block_size\": %zu,\n", kBlockSize);
  appendf(json, "  \"corpus\": \"MODERATE\",\n");
  appendf(json, "  \"corpus_seed\": %llu,\n",
          static_cast<unsigned long long>(kCorpusSeed));
  appendf(json, "  \"total_mib\": %.0f,\n",
          static_cast<double>(total) / (1024.0 * 1024.0));
  appendf(json, "  \"hardware_concurrency\": %u,\n",
          std::thread::hardware_concurrency());

  // Identity gate before any timing: every level's wire, 4 workers vs
  // serial. A mismatch is a correctness bug, not a perf detail.
  for (const int level : levels) {
    std::size_t blocks = 0;
    const Bytes wire = make_wire(registry, level, total, &blocks);
    if (!identity_check(registry, wire)) return 1;
  }
  appendf(json, "  \"identity_check\": \"pass\",\n");
  appendf(json, "  \"results\": [\n");

  bool first = true;
  for (const int level : levels) {
    std::size_t blocks = 0;
    const Bytes wire = make_wire(registry, level, total, &blocks);
    const double raw = static_cast<double>(blocks * kBlockSize);
    const double mib = raw / (1024.0 * 1024.0);
    double base = -1.0;
    std::uint64_t digest0 = 0;
    for (const std::size_t workers : worker_counts) {
      run_once(registry, wire, workers);  // warm-up (pools, page faults)
      const RunResult r = run_once(registry, wire, workers);
      if (workers == 1) {
        base = r.secs;
        digest0 = r.digest;
      } else if (r.digest != digest0) {
        std::fprintf(stderr, "digest mismatch at workers=%zu\n", workers);
        return 1;
      }
      if (!first) appendf(json, ",\n");
      first = false;
      appendf(json,
              "    {\"level\": \"%s\", \"workers\": %zu, \"blocks\": %zu, "
              "\"ratio\": %.4f, \"seconds\": %.4f, \"mib_per_s\": %.1f, "
              "\"speedup_vs_1\": %.2f}",
              registry.level(static_cast<std::size_t>(level)).label.c_str(),
              workers, blocks, static_cast<double>(wire.size()) / raw,
              r.secs, mib / r.secs, base / r.secs);
    }
  }
  appendf(json, "\n  ]\n}\n");
  return strato::bench::write_output(json, argc, argv);
}
