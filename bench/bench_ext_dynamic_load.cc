// Extension experiment: time-varying co-located load.
//
// Table II fixes the number of background connections per run; real cloud
// neighbours churn. Here background flows follow (a) a step schedule and
// (b) a Poisson/exponential birth-death process, and we compare the
// static levels against DYNAMIC. The adaptive scheme re-decides every
// t = 2 s, so it keeps tracking whichever level the current contention
// favours — the capability a statically chosen level cannot have.
#include <cstdio>

#include "expkit/policies.h"
#include "expkit/tables.h"
#include "vsim/transfer.h"

using namespace strato;

namespace {

double run(const vsim::TransferConfig& cfg, const std::string& name) {
  vsim::TransferConfig c = cfg;
  vsim::TransferExperiment exp(c);
  const auto policy = expkit::make_policy(name, exp);
  return exp.run(*policy).completion_s;
}

void table_for(const char* title, const vsim::TransferConfig& cfg) {
  std::printf("--- %s ---\n", title);
  expkit::TablePrinter table;
  table.header({"policy", "HIGH [s]", "MODERATE [s]", "LOW [s]"});
  const corpus::Compressibility classes[] = {
      corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
      corpus::Compressibility::kLow};
  for (const char* name : {"NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC"}) {
    std::vector<std::string> row{name};
    for (const auto cls : classes) {
      auto c = cfg;
      c.data = cls;
      row.push_back(expkit::fmt_seconds(run(c, name)));
    }
    table.row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Extension: adaptive compression under time-varying co-located "
      "load\n(20 GB per cell, t = 2 s, alpha = 0.2).\n\n");

  {
    vsim::TransferConfig cfg;
    cfg.total_bytes = 20'000'000'000ULL;
    cfg.seed = 21;
    cfg.bg_traffic.steps = {{0.0, 0}, {60.0, 3}, {150.0, 1}, {240.0, 4}};
    table_for("step schedule: 0 -> 3 -> 1 -> 4 background flows", cfg);
  }
  {
    vsim::TransferConfig cfg;
    cfg.total_bytes = 20'000'000'000ULL;
    cfg.seed = 22;
    cfg.bg_traffic.arrival_per_s = 0.02;   // a neighbour every ~50 s
    cfg.bg_traffic.mean_holding_s = 120.0; // staying ~2 min
    cfg.bg_traffic.max_flows = 5;
    table_for("birth-death neighbours (lambda=0.02/s, hold=120 s)", cfg);
  }

  std::printf(
      "Expected shape: no single static level is right for the whole run;\n"
      "DYNAMIC tracks the per-phase winner and lands at or near the best\n"
      "column entry in every scenario, extending the paper's fixed-k\n"
      "result to churning neighbours.\n");
  return 0;
}
