// Codec micro-benchmarks (google-benchmark): compression/decompression
// throughput and ratio of every level on every corpus class — the numbers
// behind CodecModel::defaults() and the speed/ratio ladder the adaptive
// scheme assumes (Section III: levels "ordered by their respective
// time/compression ratio").
#include <benchmark/benchmark.h>

#include "common/checksum.h"
#include "compress/registry.h"
#include "corpus/generator.h"

using namespace strato;

namespace {

constexpr std::size_t kBlock = 128 * 1024;  // the channel block size

corpus::Compressibility cls(int idx) {
  switch (idx) {
    case 0:
      return corpus::Compressibility::kHigh;
    case 1:
      return corpus::Compressibility::kModerate;
    default:
      return corpus::Compressibility::kLow;
  }
}

void BM_Compress(benchmark::State& state) {
  const auto& reg = compress::CodecRegistry::standard();
  const auto& codec = *reg.level(static_cast<std::size_t>(state.range(0))).codec;
  auto gen = corpus::make_generator(cls(static_cast<int>(state.range(1))), 3);
  const auto data = corpus::take(*gen, kBlock);
  common::Bytes out(codec.max_compressed_size(data.size()));
  std::size_t comp_size = 0;
  for (auto _ : state) {
    comp_size = codec.compress(data, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.counters["ratio"] =
      static_cast<double>(comp_size) / static_cast<double>(data.size());
}

void BM_Decompress(benchmark::State& state) {
  const auto& reg = compress::CodecRegistry::standard();
  const auto& codec = *reg.level(static_cast<std::size_t>(state.range(0))).codec;
  auto gen = corpus::make_generator(cls(static_cast<int>(state.range(1))), 3);
  const auto data = corpus::take(*gen, kBlock);
  const auto comp = codec.compress(data);
  common::Bytes back(data.size());
  for (auto _ : state) {
    codec.decompress(comp, back);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

void LevelsByCorpus(benchmark::internal::Benchmark* b) {
  for (int level = 0; level < 4; ++level) {
    for (int c = 0; c < 3; ++c) b->Args({level, c});
  }
}

BENCHMARK(BM_Compress)->Apply(LevelsByCorpus)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Decompress)->Apply(LevelsByCorpus)->Unit(benchmark::kMicrosecond);

void BM_Xxh64(benchmark::State& state) {
  auto gen = corpus::make_generator(corpus::Compressibility::kLow, 1);
  const auto data = corpus::take(*gen, kBlock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::xxh64(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Xxh64)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
