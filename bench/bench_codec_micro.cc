// Single-core codec kernel trajectory: encode/decode throughput and ratio
// for every ladder level on every corpus class. Emits one JSON object on
// stdout and mirrors it to the file named by argv[1] (the committed
// BENCH_codec.json trajectory — see scripts/check_bench.sh, schema
// "codec_micro").
//
// These rows are the per-core numbers behind CodecModel::defaults() and
// the speed/ratio ladder Algorithm 1 assumes; unlike the pipeline benches
// they involve no worker threads, so they isolate raw kernel speed (the
// lever the SIMD layer in common/simd.h exists to move). `blocks` and
// `ratio` are deterministic and must reproduce exactly between runs; the
// timing fields carry a tolerance band plus an optional min-gain floor
// (BENCH_MIN_GAIN) so the trajectory must move up, not just stay in band.
//
// Before timing anything the bench proves wire identity between the
// active SIMD instruction set and the forced-scalar kernels for every
// level × corpus — a fast cross-check of the property the oracle and the
// simd tests enforce in depth.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/bytes.h"
#include "common/simd.h"
#include "compress/registry.h"
#include "corpus/generator.h"

namespace {

using strato::bench::appendf;
using strato::common::Bytes;
using strato::compress::CodecRegistry;

constexpr std::size_t kBlockSize = 128 * 1024;
constexpr std::size_t kBlocksPerCorpus = 32;  // 4 MiB per configuration
constexpr std::uint64_t kCorpusSeed = 7;
constexpr int kTimedRuns = 5;  // best-of-N after one warm-up (shared-core noise)

std::vector<Bytes> make_corpus(strato::corpus::Compressibility c) {
  auto gen = strato::corpus::make_generator(c, kCorpusSeed);
  std::vector<Bytes> blocks;
  blocks.reserve(kBlocksPerCorpus);
  for (std::size_t i = 0; i < kBlocksPerCorpus; ++i) {
    blocks.push_back(strato::corpus::take(*gen, kBlockSize));
  }
  return blocks;
}

/// Encode wires must be byte-identical whichever kernel table is active;
/// decode must invert them exactly. Any mismatch is a correctness bug in
/// the SIMD layer, not a perf detail.
bool identity_check(const CodecRegistry& registry) {
  for (std::size_t level = 1; level < registry.level_count(); ++level) {
    const auto& codec = *registry.level(level).codec;
    for (const auto c : {strato::corpus::Compressibility::kHigh,
                         strato::corpus::Compressibility::kModerate,
                         strato::corpus::Compressibility::kLow}) {
      auto gen = strato::corpus::make_generator(c, 42);
      const Bytes data = strato::corpus::take(*gen, 96 * 1024 + 13);
      const Bytes wire_active = codec.compress(data);
      Bytes wire_scalar;
      {
        strato::common::simd::ScopedIsa forced(
            strato::common::simd::Isa::kScalar);
        wire_scalar = codec.compress(data);
      }
      if (wire_active != wire_scalar) {
        std::fprintf(stderr, "identity FAILED (encode) level %zu\n", level);
        return false;
      }
      Bytes back(data.size());
      if (codec.decompress(wire_active, back) != data.size() || back != data) {
        std::fprintf(stderr, "identity FAILED (decode) level %zu\n", level);
        return false;
      }
    }
  }
  return true;
}

struct Timed {
  double secs = 0.0;
  std::size_t out_bytes = 0;
};

template <typename Fn>
Timed best_of(Fn&& fn) {
  Timed best;
  best.out_bytes = fn();  // warm-up (page faults, scratch growth)
  best.secs = 1e9;
  for (int run = 0; run < kTimedRuns; ++run) {
    const auto start = std::chrono::steady_clock::now();
    const std::size_t bytes = fn();
    const auto end = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(end - start).count();
    if (secs < best.secs) best.secs = secs;
    best.out_bytes = bytes;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const CodecRegistry& registry = CodecRegistry::extended();
  if (!identity_check(registry)) return 1;

  const strato::corpus::Compressibility corpora[] = {
      strato::corpus::Compressibility::kHigh,
      strato::corpus::Compressibility::kModerate,
      strato::corpus::Compressibility::kLow};

  std::string json;
  appendf(json, "{\n  \"bench\": \"codec_micro\",\n");
  appendf(json, "  \"block_size\": %zu,\n  \"blocks\": %zu,\n", kBlockSize,
          kBlocksPerCorpus);
  appendf(json, "  \"corpus_seed\": %llu,\n",
          static_cast<unsigned long long>(kCorpusSeed));
  appendf(json, "  \"hardware_concurrency\": %u,\n",
          std::thread::hardware_concurrency());
  appendf(json, "  \"simd_isa\": \"%s\",\n",
          strato::common::simd::to_string(strato::common::simd::active_isa()));
  appendf(json, "  \"identity_check\": \"pass\",\n");
  appendf(json, "  \"results\": [\n");

  const double raw = static_cast<double>(kBlocksPerCorpus * kBlockSize);
  const double mib = raw / (1024.0 * 1024.0);
  bool first = true;
  for (const auto c : corpora) {
    const auto blocks = make_corpus(c);
    for (std::size_t level = 1; level < registry.level_count(); ++level) {
      const auto& entry = registry.level(level);
      const auto& codec = *entry.codec;

      Bytes scratch(codec.max_compressed_size(kBlockSize));
      const Timed enc = best_of([&] {
        std::size_t total = 0;
        for (const auto& b : blocks) total += codec.compress(b, scratch);
        return total;
      });

      std::vector<Bytes> wires;
      wires.reserve(blocks.size());
      for (const auto& b : blocks) wires.push_back(codec.compress(b));
      Bytes back(kBlockSize);
      const Timed dec = best_of([&] {
        std::size_t total = 0;
        for (const auto& w : wires) total += codec.decompress(w, back);
        return total;
      });

      const double ratio = static_cast<double>(enc.out_bytes) / raw;
      const char* corpus_name = strato::corpus::to_string(c);
      if (!first) appendf(json, ",\n");
      first = false;
      appendf(json,
              "    {\"corpus\": \"%s\", \"level\": \"%s\", \"op\": "
              "\"encode\", \"blocks\": %zu, \"ratio\": %.4f, "
              "\"seconds\": %.4f, \"mib_per_s\": %.1f},\n",
              corpus_name, entry.label.c_str(), kBlocksPerCorpus, ratio,
              enc.secs, mib / enc.secs);
      appendf(json,
              "    {\"corpus\": \"%s\", \"level\": \"%s\", \"op\": "
              "\"decode\", \"blocks\": %zu, \"ratio\": %.4f, "
              "\"seconds\": %.4f, \"mib_per_s\": %.1f}",
              corpus_name, entry.label.c_str(), kBlocksPerCorpus, ratio,
              dec.secs, mib / dec.secs);
    }
  }
  appendf(json, "\n  ]\n}\n");
  return strato::bench::write_output(json, argc, argv);
}
