// End-to-end transport throughput over real loopback sockets: the async
// epoll transport (core::AsyncTransport) moving framed blocks from
// encode-side pipeline through the kernel to the receive-side zero-copy
// decode pipeline, on one loop thread. Rows sweep the ladder rung, the
// connection count (many conns multiplexed on one epoll loop) and the
// per-endpoint worker count. Emits one JSON object on stdout and mirrors
// it to the file named by argv[1] (the committed BENCH_transport.json
// trajectory — see scripts/check_bench.sh).
//
// Every row is differentially verified in-line: the per-block XXH64 of
// everything delivered must equal the digest of everything sent, in
// order, on every connection — identity_check reports the aggregate.
// `corpus_seed`, `blocks` and `ratio` are deterministic and must
// reproduce exactly between runs; mib_per_s carries a tolerance band.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/bytes.h"
#include "common/checksum.h"
#include "compress/registry.h"
#include "core/tcp.h"
#include "core/transport.h"
#include "corpus/generator.h"

namespace {

using strato::bench::appendf;
using strato::common::Bytes;
using strato::common::ByteSpan;
using strato::compress::CodecRegistry;
using strato::core::AsyncReceiver;
using strato::core::AsyncSender;
using strato::core::AsyncTransport;
using strato::core::TcpConnection;
using strato::core::TcpListener;

constexpr std::size_t kBlockSize = 128 * 1024;
constexpr std::uint64_t kCorpusSeed = 20260808;
constexpr std::size_t kTotalBytes = 16ull * 1024 * 1024;  // per row

struct RowResult {
  double secs = -1.0;
  std::size_t blocks = 0;       // total across all connections
  std::uint64_t wire_bytes = 0; // total across all connections
  bool identity = false;
};

/// One timed row: `conns` loopback pairs on a single loop, every block
/// digest-checked on delivery against its sent twin.
RowResult run_once(const CodecRegistry& registry, int level,
                   std::size_t conns, std::size_t workers) {
  RowResult r;
  const std::size_t blocks_per_conn =
      std::max<std::size_t>(kTotalBytes / conns / kBlockSize, 1);

  struct Conn {
    std::unique_ptr<strato::corpus::Generator> gen;
    Bytes block;
    std::vector<std::uint64_t> sent;
    std::uint64_t delivered = 0;
    bool ok = true;
  };
  std::vector<std::unique_ptr<Conn>> states;
  AsyncTransport transport(registry);
  for (std::size_t c = 0; c < conns; ++c) {
    auto st = std::make_unique<Conn>();
    st->gen = strato::corpus::make_generator(
        strato::corpus::Compressibility::kModerate, kCorpusSeed + c);
    st->block.resize(kBlockSize);
    states.push_back(std::move(st));
  }
  for (std::size_t c = 0; c < conns; ++c) {
    Conn& st = *states[c];
    TcpListener listener;
    auto client = TcpConnection::connect("127.0.0.1", listener.port());
    auto server = listener.accept();
    AsyncReceiver::Config rx_cfg;
    rx_cfg.decode_workers = workers;
    transport.add_receiver(
        std::move(server), rx_cfg,
        [&st](ByteSpan block, const strato::compress::FrameHeader&) {
          strato::common::Xxh64State h;
          h.update(block);
          if (st.delivered >= st.sent.size() ||
              h.digest() != st.sent[st.delivered]) {
            st.ok = false;
          }
          ++st.delivered;
        });
    AsyncSender::Config tx_cfg;
    tx_cfg.workers = workers;
    transport.add_sender(std::move(client), tx_cfg);
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < blocks_per_conn; ++b) {
    for (std::size_t c = 0; c < conns; ++c) {
      Conn& st = *states[c];
      st.gen->generate(st.block);
      strato::common::Xxh64State h;
      h.update(st.block);
      st.sent.push_back(h.digest());
      transport.sender(c).send(level, st.block);
    }
    transport.poll(0);
  }
  for (std::size_t c = 0; c < conns; ++c) transport.sender(c).finish();
  transport.run_receivers();
  const auto end = std::chrono::steady_clock::now();

  r.secs = std::chrono::duration<double>(end - start).count();
  r.identity = true;
  for (std::size_t c = 0; c < conns; ++c) {
    const Conn& st = *states[c];
    if (!st.ok || st.delivered != st.sent.size() ||
        !transport.receiver(c).clean_eof()) {
      r.identity = false;
    }
    r.blocks += st.sent.size();
    r.wire_bytes += transport.sender(c).wire_bytes();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const int levels[] = {0, 2};  // stored (wire-bound), MEDIUM (codec-bound)
  struct Shape {
    std::size_t conns;
    std::size_t workers;
  };
  const Shape shapes[] = {{1, 1}, {1, 4}, {8, 1}};

  std::string json;
  appendf(json, "{\n  \"bench\": \"transport_loopback\",\n");
  appendf(json, "  \"block_size\": %zu,\n", kBlockSize);
  appendf(json, "  \"corpus\": \"MODERATE\",\n");
  appendf(json, "  \"corpus_seed\": %llu,\n",
          static_cast<unsigned long long>(kCorpusSeed));
  appendf(json, "  \"total_mib\": %.0f,\n",
          static_cast<double>(kTotalBytes) / (1024.0 * 1024.0));
  appendf(json, "  \"hardware_concurrency\": %u,\n",
          std::thread::hardware_concurrency());

  bool identity = true;
  std::string rows;
  bool first = true;
  for (const int level : levels) {
    for (const Shape& shape : shapes) {
      run_once(registry, level, shape.conns, shape.workers);  // warm-up
      const RowResult r = run_once(registry, level, shape.conns,
                                   shape.workers);
      identity = identity && r.identity;
      const double raw = static_cast<double>(r.blocks) * kBlockSize;
      const double mib = raw / (1024.0 * 1024.0);
      if (!first) appendf(rows, ",\n");
      first = false;
      appendf(rows,
              "    {\"level\": \"%s\", \"conns\": %zu, \"workers\": %zu, "
              "\"blocks\": %zu, \"ratio\": %.4f, \"seconds\": %.4f, "
              "\"mib_per_s\": %.1f}",
              registry.level(static_cast<std::size_t>(level)).label.c_str(),
              shape.conns, shape.workers, r.blocks,
              static_cast<double>(r.wire_bytes) / raw, r.secs, mib / r.secs);
    }
  }
  if (!identity) {
    std::fprintf(stderr, "transport identity FAILED\n");
    return 1;
  }
  appendf(json, "  \"identity_check\": \"pass\",\n");
  json += "  \"results\": [\n";
  json += rows;  // appendf's fixed buffer would truncate the row block
  json += "\n  ]\n}\n";
  return strato::bench::write_output(json, argc, argv);
}
