// Ablation: the exponential backoff and the decision interval t.
//
// Two design choices of Section III get isolated here:
//  * the per-level exponential backoff (vs probing every window);
//  * the MB-granularity decision interval t (the paper uses 2 s and argues
//    for coarse windows to ride out virtualized-I/O fluctuations).
#include <cstdio>

#include "expkit/policies.h"
#include "expkit/tables.h"
#include "vsim/transfer.h"

using namespace strato;

namespace {

struct Outcome {
  double completion_s = 0.0;
  int probes = 0;
};

Outcome run(corpus::Compressibility data, double t_seconds, bool backoff) {
  vsim::TransferConfig cfg;
  cfg.data = data;
  cfg.bg_flows = 1;
  cfg.total_bytes = 20'000'000'000ULL;
  cfg.seed = 99;
  vsim::TransferExperiment exp(cfg);
  core::AdaptiveConfig acfg;
  acfg.alpha = 0.2;
  acfg.num_levels = vsim::CodecModel::kNumLevels;
  acfg.backoff_enabled = backoff;
  auto policy = std::make_unique<core::AdaptivePolicy>(
      acfg, common::SimTime::seconds(t_seconds));
  Outcome out;
  policy->set_trace([&](common::SimTime, double, const core::Decision& d) {
    if (d.probed) ++out.probes;
  });
  out.completion_s = exp.run(*policy).completion_s;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: decision interval t x exponential backoff\n"
      "(20 GB per cell, 1 background flow, alpha = 0.2).\n\n");
  for (const auto data :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kLow}) {
    std::printf("--- %s data ---\n", corpus::to_string(data));
    expkit::TablePrinter table;
    table.header({"t [s]", "backoff ON [s]", "probes", "backoff OFF [s]",
                  "probes "});
    for (const double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const auto on = run(data, t, true);
      const auto off = run(data, t, false);
      table.row({expkit::fmt(t, 1), expkit::fmt_seconds(on.completion_s),
                 std::to_string(on.probes),
                 expkit::fmt_seconds(off.completion_s),
                 std::to_string(off.probes)});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Expected shape: without backoff the scheme probes every stable\n"
      "window and pays for the constant excursions to worse levels; the\n"
      "backoff cuts probe counts by orders of magnitude at equal or better\n"
      "completion times. Very small t reacts faster but probes more.\n");
  return 0;
}
