// Fig. 1 reproduction: accuracy of the CPU utilization displayed inside
// virtual machines during I/O-intensive operations.
//
// For each I/O operation (network send/receive, file write/read) and each
// virtualization technique, the bench saturates the operation, takes >=120
// one-second CPU samples inside the VM and on the host, and prints the
// averaged USR/SYS/HIRQ/SIRQ/STEAL split plus the VM-vs-host discrepancy
// factor the paper highlights (up to ~15x).
#include <cstdio>

#include "expkit/tables.h"
#include "vsim/iobench.h"

using namespace strato;

namespace {

std::string pct(double v) { return expkit::fmt(v * 100.0, 1); }

void print_breakdown_row(expkit::TablePrinter& t, const std::string& label,
                         const metrics::CpuBreakdown& b) {
  t.row({label, pct(b.usr), pct(b.sys), pct(b.hirq), pct(b.sirq),
         pct(b.steal), pct(b.busy())});
}

}  // namespace

int main() {
  constexpr int kSamples = 120;  // the paper's "at least 120" per cell
  std::printf(
      "Fig. 1: displayed vs host-reported CPU utilization during saturated "
      "I/O\n(%d one-second samples per cell, percent of one core).\n\n",
      kSamples);

  for (const auto op : vsim::kAllIoOps) {
    std::printf("=== %s ===\n", vsim::to_string(op));
    expkit::TablePrinter table;
    table.header(
        {"view", "USR", "SYS", "HIRQ", "SIRQ", "STEAL", "busy"});
    for (const auto tech : vsim::kAllTechs) {
      const auto res = vsim::run_cpu_accuracy(tech, op, kSamples, 42);
      print_breakdown_row(table, std::string(vsim::to_string(tech)) + " VM",
                          res.vm_mean);
      if (res.host_observable) {
        print_breakdown_row(
            table, std::string(vsim::to_string(tech)) + " Host",
            res.host_mean);
        table.row({"  -> discrepancy",
                   "x" + expkit::fmt(res.discrepancy(), 1), "", "", "", "",
                   ""});
      } else {
        table.row({"  (host not observable on EC2)", "", "", "", "", "", ""});
      }
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf(
      "Paper findings reproduced: the discrepancy spans all operations and\n"
      "techniques; net send on KVM (paravirt.) and file read on XEN reach\n"
      "~15x, while net send on KVM (full virt.) and XEN stays small.\n");
  return 0;
}
