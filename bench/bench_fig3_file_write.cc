// Fig. 3 reproduction: distribution of file-write throughput as observed
// within the virtual machine, including XEN's host write-back caching
// artifacts (spuriously high displayed rates, periodic flush collapses,
// unflushed data at the end of the 50 GB write).
#include <cstdio>

#include "expkit/ascii_chart.h"
#include "expkit/tables.h"
#include "vsim/iobench.h"

using namespace strato;

int main() {
  constexpr std::uint64_t kTotal = 50'000'000'000ULL;
  constexpr std::uint64_t kChunk = 20'000'000ULL;

  std::printf(
      "Fig. 3: distribution of file-write throughput observed inside the "
      "VM\n(50 GB, one sample per 20 MB, MB/s).\n\n");

  expkit::TablePrinter table;
  table.header({"technique", "min", "q1", "median", "q3", "max", "mean",
                "physical disk", "dirty at end"});
  std::vector<std::pair<std::string, common::FiveNumber>> plots;
  for (const auto tech : vsim::kAllTechs) {
    const auto res = vsim::run_file_write_throughput(tech, kTotal, kChunk, 7);
    const auto f = res.rates_mb_s.five_number();
    table.row({vsim::to_string(tech), expkit::fmt(f.min, 1),
               expkit::fmt(f.q1, 1), expkit::fmt(f.median, 1),
               expkit::fmt(f.q3, 1), expkit::fmt(f.max, 1),
               expkit::fmt(res.rates_mb_s.mean(), 1),
               expkit::fmt(vsim::profile(tech).disk_write_bytes_s / 1e6, 0) +
                   " MB/s",
               expkit::fmt(res.final_dirty_bytes / 1e6, 0) + " MB"});
    plots.emplace_back(vsim::to_string(tech), f);
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("Boxplots (0 .. 400 MB/s):\n");
  for (const auto& [label, f] : plots) {
    std::printf("%s\n",
                expkit::render_boxplot(label, f, 0.0, 400.0).c_str());
  }
  std::printf(
      "\nPaper findings reproduced: KVM and EC2 fluctuate comparably to the\n"
      "native baseline; the XEN guest periodically sees memory-speed rates\n"
      "followed by few-MB/s flush stalls, its displayed mean spuriously\n"
      "exceeds the physical disk, and gigabytes remain unflushed in the\n"
      "host cache after the 50 GB write.\n");
  return 0;
}
