// Extension experiment: realistic workloads over the real transport.
//
// The paper evaluates three Canterbury-style compressibility classes; real
// cloud applications ship other shapes. This bench runs the *actual*
// codecs and the *actual* adaptive pipeline (no simulator) over service
// logs and columnar shuffle data at several link budgets, comparing the
// static levels with DYNAMIC — the end-to-end behaviour a downstream user
// of this library would see.
#include <cstdio>
#include <memory>
#include <thread>

#include "core/policy.h"
#include "core/stream.h"
#include "core/throttled_pipe.h"
#include "corpus/generator.h"
#include "expkit/tables.h"

using namespace strato;

namespace {

std::unique_ptr<corpus::Generator> make_workload(const std::string& name) {
  if (name == "logs") return std::make_unique<corpus::LogGenerator>(7);
  if (name == "columnar") {
    return std::make_unique<corpus::ColumnarGenerator>(7);
  }
  return corpus::make_generator(corpus::Compressibility::kModerate, 7);
}

double ship(const std::string& workload, double link_bytes_s,
            const std::string& policy_name, std::size_t total) {
  const auto& registry = compress::CodecRegistry::standard();
  auto link = std::make_shared<core::LinkShare>(link_bytes_s);
  core::ThrottledPipe pipe(link);
  std::thread drainer([&] {
    while (!pipe.read(256 * 1024).empty()) {
    }
  });

  std::unique_ptr<core::CompressionPolicy> policy;
  if (policy_name == "DYNAMIC") {
    core::AdaptiveConfig cfg;
    cfg.num_levels = static_cast<int>(registry.level_count());
    policy =
        std::make_unique<core::AdaptivePolicy>(cfg, common::SimTime::ms(250));
  } else {
    for (std::size_t l = 0; l < registry.level_count(); ++l) {
      if (registry.level(l).label == policy_name) {
        policy = std::make_unique<core::StaticPolicy>(static_cast<int>(l),
                                                      policy_name);
      }
    }
  }

  common::SteadyClock clock;
  core::CompressingWriter writer(pipe, registry, *policy, clock);
  auto gen = make_workload(workload);
  common::Bytes chunk(128 * 1024);
  const auto t0 = clock.now();
  for (std::size_t sent = 0; sent < total; sent += chunk.size()) {
    gen->generate(chunk);
    writer.write(chunk);
  }
  writer.flush();
  pipe.close();
  drainer.join();
  return (clock.now() - t0).to_seconds();
}

}  // namespace

int main() {
  constexpr std::size_t kTotal = 24 << 20;  // real codecs, real time
  std::printf(
      "Extension: realistic workloads over the real adaptive pipeline\n"
      "(%zu MB per cell, wall-clock seconds; lower is better).\n\n",
      kTotal >> 20);
  for (const char* workload : {"logs", "columnar"}) {
    std::printf("--- %s ---\n", workload);
    expkit::TablePrinter table;
    table.header({"link [MB/s]", "NO", "LIGHT", "HEAVY", "DYNAMIC"});
    for (const double link : {5e6, 20e6, 60e6}) {
      std::vector<std::string> row{expkit::fmt(link / 1e6, 0)};
      for (const char* p : {"NO", "LIGHT", "HEAVY", "DYNAMIC"}) {
        row.push_back(expkit::fmt(ship(workload, link, p, kTotal), 1));
      }
      table.row(row);
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Expected shape: logs compress ~3-5x, so compression wins at every\n"
      "starved link; columnar data rewards the entropy-coding levels.\n"
      "DYNAMIC lands near the per-cell winner without configuration.\n");
  return 0;
}
