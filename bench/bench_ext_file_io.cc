// Extension experiment: adaptive compression on the file-I/O path — the
// paper's stated future work (Section VI).
//
// The sender pipeline writes framed blocks to the virtual disk instead of
// the network. Two settings:
//  * KVM (paravirt.): honest disk, no cache games — compression behaves
//    like the network case (disk bandwidth is the shared resource).
//  * XEN (paravirt.): the host write-back cache absorbs writes at memory
//    speed and stalls during flushes; the application data rate the
//    controller sees is the *cache* rate, so the benefit estimate is
//    systematically distorted — the obstacle the paper names.
#include <cstdio>

#include "expkit/tables.h"
#include "vsim/file_transfer.h"

using namespace strato;

namespace {

struct Row {
  double completion = 0.0;
  double drained = 0.0;
  double dirty_gb = 0.0;
};

Row run(vsim::VirtTech tech, corpus::Compressibility data, int level) {
  vsim::FileTransferConfig cfg;
  cfg.tech = tech;
  cfg.data = data;
  cfg.total_bytes = 20'000'000'000ULL;
  cfg.seed = 31;
  std::unique_ptr<core::CompressionPolicy> policy;
  if (level >= 0) {
    policy = std::make_unique<core::StaticPolicy>(level, "S");
  } else {
    core::AdaptiveConfig acfg;
    acfg.num_levels = vsim::CodecModel::kNumLevels;
    policy = std::make_unique<core::AdaptivePolicy>(
        acfg, common::SimTime::seconds(2));
  }
  const auto res = vsim::run_file_transfer(cfg, *policy);
  return {res.completion_s, res.drained_s, res.final_dirty_bytes / 1e9};
}

}  // namespace

int main() {
  std::printf(
      "Extension: adaptive compression for file writes (20 GB per cell).\n"
      "'accepted' = writer done; 'durable' = host cache drained too.\n\n");
  for (const auto tech :
       {vsim::VirtTech::kKvmPara, vsim::VirtTech::kXenPara}) {
    std::printf("--- %s ---\n", vsim::to_string(tech));
    expkit::TablePrinter table;
    table.header({"policy", "HIGH acc/dur [s]", "MODERATE acc/dur [s]",
                  "LOW acc/dur [s]"});
    const corpus::Compressibility classes[] = {
        corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow};
    const char* names[] = {"NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC"};
    for (int p = 0; p < 5; ++p) {
      std::vector<std::string> row{names[p]};
      for (const auto cls : classes) {
        const Row r = run(tech, cls, p == 4 ? -1 : p);
        row.push_back(expkit::fmt_seconds(r.completion) + "/" +
                      expkit::fmt_seconds(r.drained));
      }
      table.row(row);
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Shape: on the honest KVM disk DYNAMIC tracks the best level as in\n"
      "Table II. On XEN the cache distorts the application data rate the\n"
      "controller feeds on (absorb-speed windows interleaved with flush\n"
      "stalls), and DYNAMIC's decisions visibly degrade — this *is* the\n"
      "obstacle the paper names when deferring file I/O to future work,\n"
      "now quantified. Static compression still shortens the durable time\n"
      "by shrinking what must reach the platter.\n");
  return 0;
}
