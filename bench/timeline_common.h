// Shared rendering for the Fig. 4-6 timeline benches.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>

#include "expkit/ascii_chart.h"
#include "expkit/paper_data.h"
#include "expkit/policies.h"
#include "vsim/transfer.h"

namespace strato::benchutil {

/// `--csv <path>` from a bench's argv, or empty.
inline std::string csv_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return argv[i + 1];
  }
  return {};
}

/// Run one DYNAMIC transfer with timeline recording and print the Fig. 4
/// style panels: application/network throughput, CPU utilization and the
/// chosen compression level over time. When `csv_path` is non-empty the
/// full per-second series are additionally written as CSV for external
/// plotting. Returns the result for further summary lines.
inline vsim::TransferResult run_and_render(vsim::TransferConfig cfg,
                                           double alpha = 0.2,
                                           const std::string& csv_path = {}) {
  cfg.record_timeline = true;
  vsim::TransferExperiment exp(cfg);
  auto policy = expkit::make_policy("DYNAMIC", exp, alpha);
  auto* adaptive = dynamic_cast<core::AdaptivePolicy*>(policy.get());
  int probes = 0, reverts = 0, decisions = 0;
  adaptive->set_trace(
      [&](common::SimTime, double, const core::Decision& d) {
        ++decisions;
        if (d.probed) ++probes;
        if (d.reverted) ++reverts;
      });
  const auto res = exp.run(*policy);

  std::printf("completion: %.0f s, raw %.1f GB, wire %.1f GB\n",
              res.completion_s, res.raw_bytes / 1e9, res.wire_bytes / 1e9);
  std::printf("decision windows: %d (probes %d, reverts %d)\n\n", decisions,
              probes, reverts);

  std::printf("application throughput [MBit/s]:\n%s\n",
              expkit::render_strip(res.timeline.series("app_mbit_s")).c_str());
  std::printf("network throughput [MBit/s]:\n%s\n",
              expkit::render_strip(res.timeline.series("net_mbit_s")).c_str());
  std::printf("VM CPU utilization [%%]:\n%s\n",
              expkit::render_strip(res.timeline.series("cpu_busy_vm")).c_str());
  std::printf("compression level over time (N/L/M/H):\n%s\n",
              expkit::render_level_strip(res.timeline.series("level"),
                                         res.completion_s)
                  .c_str());

  std::printf("blocks per level:");
  for (std::size_t l = 0; l < res.blocks_per_level.size(); ++l) {
    std::printf(" %s=%llu", expkit::kPolicyNames[l],
                static_cast<unsigned long long>(res.blocks_per_level[l]));
  }
  std::printf("\n");

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (csv) {
      res.timeline.write_csv(csv, common::SimTime::seconds(1));
      std::printf("timeline series written to %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    }
  }
  return res;
}

}  // namespace strato::benchutil
