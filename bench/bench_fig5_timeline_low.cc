// Fig. 5 reproduction: behaviour of the adaptive compression scheme with
// hardly compressible data (LOW) and two concurrent TCP connections.
//
// Because the performance difference between the levels is small on
// incompressible data, the scheme keeps (mis)reading fluctuations as
// changes and continues probing — the paper's discussion of alpha.
#include <cstdio>

#include "timeline_common.h"

using namespace strato;

int main(int argc, char** argv) {
  std::printf(
      "Fig. 5: adaptive compression, LOW compressibility, two concurrent "
      "TCP connections\n(50 GB, t = 2 s, alpha = 0.2).\n\n");
  vsim::TransferConfig cfg;
  cfg.data = corpus::Compressibility::kLow;
  cfg.bg_flows = 2;
  cfg.total_bytes = 50'000'000'000ULL;
  cfg.seed = 5;
  const auto res = benchutil::run_and_render(
      cfg, 0.2, benchutil::csv_path_from_args(argc, argv));

  std::uint64_t total = 0, heavy = 0;
  for (std::size_t l = 0; l < res.blocks_per_level.size(); ++l) {
    total += res.blocks_per_level[l];
    if (l == 3) heavy = res.blocks_per_level[l];
  }
  std::printf(
      "\nOn incompressible data under contention the cheap levels are\n"
      "nearly tied (a few %% apart), so the prober keeps visiting them —\n"
      "the behaviour Fig. 5 shows. Only HEAVY is decisively wrong and gets\n"
      "%.1f%% of blocks. Paper: lowering alpha would sharpen the choice at\n"
      "the cost of more wrong decisions under TCP fluctuations.\n",
      100.0 * static_cast<double>(heavy) / static_cast<double>(total));
  return 0;
}
